// Package journal is the drift-forensics audit log: an append-only,
// segmented event journal recording every monitor decision that
// matters (alarms, quarantines, state transitions), re-inferences,
// ingests, replication installs, and registry mutations — each stamped
// with the trace ID of the request that caused it. It is the durable
// half of the observability story: /debug/traces and the monitor's
// in-memory window evaporate on restart; the journal is what an
// operator greps at 9am to learn why a stream quarantined at 03:12.
//
// On-disk layout mirrors the registry/index persistence discipline:
// one directory of segment files, each
//
//	magic "AVJRN1\n" | per event: uint32 payload length | uint32 CRC-32C | payload JSON
//
// Event IDs are assigned at append time, monotonically increasing
// across segments for the journal's lifetime; the ID doubles as the
// read cursor (GET /events?after=). Segments rotate at a byte
// threshold and the oldest are deleted past a retention count, so the
// journal is a bounded sliding window, not an unbounded log. A torn
// tail (crash mid-append) is truncated at open; a CRC failure mid-read
// ends that segment's events — corrupt input is an error or a short
// read, never a panic.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind discriminates journal events.
type Kind string

// Event kinds. Decision events carry a monitor.Decision as their
// detail; the replication and registry kinds carry small ad-hoc
// objects described in the service layer.
const (
	KindDecision        Kind = "decision"
	KindReinfer         Kind = "reinfer"
	KindIngest          Kind = "ingest"
	KindDeltaApply      Kind = "delta_apply"
	KindSnapshotInstall Kind = "snapshot_install"
	KindRegistryPut     Kind = "registry_put"
	KindRegistryDelete  Kind = "registry_delete"
)

// Event is one journal record. ID and Time are assigned by Append.
type Event struct {
	// ID is the journal-assigned monotonic identifier; it doubles as
	// the pagination cursor (events with ID > after).
	ID uint64 `json:"id"`
	// Time is the append wall time (UTC).
	Time time.Time `json:"time"`
	Kind Kind      `json:"kind"`
	// Stream names the affected stream, when the event concerns one.
	Stream string `json:"stream,omitempty"`
	// TraceID correlates the event with request logs and /debug/traces.
	TraceID string `json:"trace_id,omitempty"`
	// Action is the monitor action of decision events ("alarm", ...).
	Action string `json:"action,omitempty"`
	// Detail is the kind-specific payload, stored verbatim.
	Detail json.RawMessage `json:"detail,omitempty"`
}

// Options configures a journal's rotation and retention.
type Options struct {
	// MaxSegmentBytes rotates the active segment once it exceeds this
	// size (0 = 4 MiB).
	MaxSegmentBytes int64
	// MaxSegments caps retained segments including the active one;
	// older segments are deleted at rotation (0 = 8).
	MaxSegments int
}

const (
	defaultSegmentBytes = 4 << 20
	defaultMaxSegments  = 8
	// maxRecord bounds one event's payload so a corrupt length prefix
	// cannot drive a huge allocation.
	maxRecord = 1 << 20
	segSuffix = ".avj"
)

var jrnMagic = []byte("AVJRN1\n")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Journal is an open event journal. Safe for concurrent use: appends
// serialize behind a writer lock, reads run under a reader lock (the
// active segment's torn tail — an append in flight — reads as
// end-of-segment).
type Journal struct {
	dir string
	opt Options

	mu       sync.RWMutex
	segs     []segmentRef // sorted by firstID, active last
	active   *os.File
	activeN  int64  // bytes written to the active segment
	nextID   uint64 // ID the next append receives
	appended uint64 // events appended by this process (telemetry)
}

// segmentRef is one on-disk segment.
type segmentRef struct {
	path    string
	firstID uint64 // ID of the segment's first event (from its name)
}

// segName encodes a segment's first event ID; the hex form keeps
// lexical order equal to numeric order.
func segName(firstID uint64) string {
	return fmt.Sprintf("seg-%016x%s", firstID, segSuffix)
}

// Filter selects events out of the journal. The zero Filter returns
// everything (bounded by Limit's default).
type Filter struct {
	// AfterID returns only events with ID strictly greater — the
	// pagination cursor.
	AfterID uint64
	// ID returns exactly the event with this ID (0 = no constraint).
	ID uint64
	// Stream, Kind, and TraceID match exactly when non-empty.
	Stream  string
	Kind    Kind
	TraceID string
	// Since keeps events at or after this time.
	Since time.Time
	// Limit caps returned events (0 = 1000). Events come oldest-first,
	// so the last returned ID is the next page's AfterID.
	Limit int
}

// DefaultLimit is the page size when a Filter does not set one.
const DefaultLimit = 1000

// Open opens (or creates) the journal directory. Existing segments are
// adopted; the last one is scanned and any torn or corrupt tail is
// truncated away, so an interrupted append never poisons the journal —
// corrupt bytes cost the events after them in that segment, nothing
// more, and never a panic.
func Open(dir string, opt Options) (*Journal, error) {
	if opt.MaxSegmentBytes <= 0 {
		opt.MaxSegmentBytes = defaultSegmentBytes
	}
	if opt.MaxSegments <= 0 {
		opt.MaxSegments = defaultMaxSegments
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: creating %s: %w", dir, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: reading %s: %w", dir, err)
	}
	j := &Journal{dir: dir, opt: opt, nextID: 1}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		var firstID uint64
		if _, err := fmt.Sscanf(name, "seg-%016x", &firstID); err != nil {
			continue // not ours; leave it alone
		}
		j.segs = append(j.segs, segmentRef{path: filepath.Join(dir, name), firstID: firstID})
	}
	sort.Slice(j.segs, func(a, b int) bool { return j.segs[a].firstID < j.segs[b].firstID })

	if n := len(j.segs); n > 0 {
		last := j.segs[n-1]
		lastID, validEnd, err := scanSegment(last.path, nil)
		if err != nil {
			return nil, err
		}
		info, err := os.Stat(last.path)
		if err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
		if validEnd < info.Size() {
			// Torn or corrupt tail: cut the segment back to its last
			// whole, checksummed record. Appends continue from there.
			if err := os.Truncate(last.path, validEnd); err != nil {
				return nil, fmt.Errorf("journal: truncating torn tail of %s: %w", last.path, err)
			}
		}
		if lastID >= last.firstID {
			j.nextID = lastID + 1
		} else {
			// Segment holds no valid records; its name still records
			// where numbering was headed.
			j.nextID = last.firstID
		}
		f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("journal: reopening %s: %w", last.path, err)
		}
		j.active = f
		j.activeN = validEnd
	}
	return j, nil
}

// Dir returns the journal's directory (for diagnostics and artifact
// collection).
func (j *Journal) Dir() string { return j.dir }

// LastID returns the highest event ID ever assigned (0 when empty).
func (j *Journal) LastID() uint64 {
	j.mu.RLock()
	defer j.mu.RUnlock()
	return j.nextID - 1
}

// Appended counts events appended by this process.
func (j *Journal) Appended() uint64 {
	j.mu.RLock()
	defer j.mu.RUnlock()
	return j.appended
}

// Append stamps the event with the next ID and the current time,
// writes it durably to the active segment, and rotates/retires
// segments as configured. It returns the assigned ID.
func (j *Journal) Append(e Event) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.active == nil {
		if err := j.rotateLocked(); err != nil {
			return 0, err
		}
	}
	e.ID = j.nextID
	if e.Time.IsZero() {
		e.Time = time.Now().UTC()
	}
	payload, err := json.Marshal(&e)
	if err != nil {
		return 0, fmt.Errorf("journal: encoding event: %w", err)
	}
	if len(payload) > maxRecord {
		return 0, fmt.Errorf("journal: event of %d bytes exceeds record bound %d", len(payload), maxRecord)
	}
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	if _, err := j.active.Write(frame[:]); err != nil {
		return 0, fmt.Errorf("journal: appending event %d: %w", e.ID, err)
	}
	if _, err := j.active.Write(payload); err != nil {
		return 0, fmt.Errorf("journal: appending event %d: %w", e.ID, err)
	}
	// Events are rare (alarms, transitions, ingests — never steady-state
	// accepts), so a per-append sync buys real durability for trivial
	// throughput cost.
	if err := j.active.Sync(); err != nil {
		return 0, fmt.Errorf("journal: syncing event %d: %w", e.ID, err)
	}
	j.activeN += int64(len(frame)) + int64(len(payload))
	j.nextID++
	j.appended++
	if j.activeN >= j.opt.MaxSegmentBytes {
		if err := j.rotateLocked(); err != nil {
			// The event itself is durable; rotation failure surfaces on
			// this append so the operator hears about a full disk early.
			return e.ID, err
		}
	}
	return e.ID, nil
}

// rotateLocked seals the active segment, starts a new one named by the
// next event ID, and deletes the oldest segments past retention.
// Caller holds the write lock.
func (j *Journal) rotateLocked() error {
	if j.active != nil {
		if err := j.active.Close(); err != nil {
			return fmt.Errorf("journal: closing sealed segment: %w", err)
		}
		j.active = nil
	}
	path := filepath.Join(j.dir, segName(j.nextID))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: creating segment %s: %w", path, err)
	}
	if _, err := f.Write(jrnMagic); err != nil {
		cerr := f.Close() // best effort; the write error is the story
		_ = cerr
		return fmt.Errorf("journal: writing magic to %s: %w", path, err)
	}
	j.segs = append(j.segs, segmentRef{path: path, firstID: j.nextID})
	j.active = f
	j.activeN = int64(len(jrnMagic))
	for len(j.segs) > j.opt.MaxSegments {
		old := j.segs[0]
		if err := os.Remove(old.path); err != nil {
			return fmt.Errorf("journal: retiring segment %s: %w", old.path, err)
		}
		j.segs = j.segs[1:]
	}
	return nil
}

// Close seals the journal. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.active == nil {
		return nil
	}
	err := j.active.Close()
	j.active = nil
	if err != nil {
		return fmt.Errorf("journal: closing active segment: %w", err)
	}
	return nil
}

// Events returns the retained events matching the filter, oldest
// first. A corrupt record ends its segment's contribution (everything
// before it is returned); reads never fail on bad bytes, only on I/O.
func (j *Journal) Events(f Filter) ([]Event, error) {
	limit := f.Limit
	if limit <= 0 {
		limit = DefaultLimit
	}
	j.mu.RLock()
	defer j.mu.RUnlock()
	out := []Event{}
	for i, seg := range j.segs {
		// A segment is skippable when the next segment starts at or
		// below the cursor — every ID inside is <= the cursor too.
		if i+1 < len(j.segs) && j.segs[i+1].firstID <= f.AfterID+1 {
			continue
		}
		stop := false
		_, _, err := scanSegment(seg.path, func(e Event) bool {
			if !matchEvent(e, f) {
				return true
			}
			out = append(out, e)
			if len(out) >= limit {
				stop = true
				return false
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		if stop {
			break
		}
	}
	return out, nil
}

func matchEvent(e Event, f Filter) bool {
	if e.ID <= f.AfterID {
		return false
	}
	if f.ID != 0 && e.ID != f.ID {
		return false
	}
	if f.Stream != "" && e.Stream != f.Stream {
		return false
	}
	if f.Kind != "" && e.Kind != f.Kind {
		return false
	}
	if f.TraceID != "" && e.TraceID != f.TraceID {
		return false
	}
	if !f.Since.IsZero() && e.Time.Before(f.Since) {
		return false
	}
	return true
}

// scanSegment walks one segment's records, calling fn (when non-nil)
// per decoded event until it returns false. It returns the last valid
// event ID seen (0 if none) and the byte offset just past the last
// whole, checksum-valid record — the truncation point for a torn tail.
// Malformed framing, a short tail, or a CRC mismatch end the scan at
// the previous record; only real I/O problems surface as errors.
func scanSegment(path string, fn func(Event) bool) (lastID uint64, validEnd int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("journal: reading segment %s: %w", path, err)
	}
	if len(data) < len(jrnMagic) || string(data[:len(jrnMagic)]) != string(jrnMagic) {
		return 0, 0, fmt.Errorf("journal: %s: bad magic (not an AVJRN1 segment)", path)
	}
	off := len(jrnMagic)
	for {
		if off+8 > len(data) {
			break // torn frame header
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n <= 0 || n > maxRecord || off+8+n > len(data) {
			break // corrupt length or torn payload
		}
		payload := data[off+8 : off+8+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			break // bit rot; everything after is suspect
		}
		var e Event
		if err := json.Unmarshal(payload, &e); err != nil {
			break // checksummed but undecodable: treat as corrupt
		}
		off += 8 + n
		lastID = e.ID
		if fn != nil && !fn(e) {
			// Caller stopped early; the rest of the file is still valid
			// as far as anyone knows — report the scanned extent.
			return lastID, int64(off), nil
		}
	}
	return lastID, int64(off), nil
}
