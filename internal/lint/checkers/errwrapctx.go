package checkers

import (
	"go/ast"
	"go/constant"
	"go/types"
	"path/filepath"
	"strings"

	"autovalidate/internal/lint/analysis"
)

// ErrWrapCtx enforces the error-chain contract:
//
//  1. Everywhere: an error value formatted into fmt.Errorf must use
//     %w, not %v/%s — flattening an error to text severs errors.Is /
//     errors.As for every caller above the boundary (the service layer
//     maps core.ErrNoFeasible to HTTP 422 exactly that way).
//
//  2. In persistence code (files matching persist*.go / deltalog*.go):
//     an error received from another package must not be returned
//     bare; it must be wrapped with the section/generation context
//     that makes a corrupt-file report actionable ("shard 3 checksum
//     mismatch", not just "unexpected EOF").
var ErrWrapCtx = &analysis.Analyzer{
	Name: "errwrapctx",
	Doc: "errors crossing internal package boundaries must wrap with %w; " +
		"persistence errors must carry section/generation context",
	Run: runErrWrapCtx,
}

func runErrWrapCtx(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		name := filepath.Base(pass.Fset.Position(f.Package).Filename)
		persistFile := strings.HasPrefix(name, "persist") || strings.HasPrefix(name, "deltalog")
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkErrorfWrap(pass, call)
			}
			return true
		})
		if persistFile {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					checkBareReturns(pass, fd)
				}
			}
		}
	}
	return nil
}

// checkErrorfWrap flags fmt.Errorf calls that format an error value
// without %w.
func checkErrorfWrap(pass *analysis.Pass, call *ast.CallExpr) {
	if !isFunc(callee(pass.Info, call), "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	if strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if implementsError(pass.TypeOf(arg)) {
			pass.Reportf(arg.Pos(), "error flattened into fmt.Errorf without %%w; callers lose errors.Is/As across the boundary")
			return
		}
	}
}

// checkBareReturns flags `return err` in persistence code when err's
// nearest assignment took it straight from another package's call.
func checkBareReturns(pass *analysis.Pass, fd *ast.FuncDecl) {
	// All assignments obj = <single call>, by assigned object.
	assigns := map[types.Object][]*ast.CallExpr{}
	positions := map[types.Object][]ast.Node{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.ObjectOf(id)
			if obj == nil || !implementsError(obj.Type()) {
				continue
			}
			assigns[obj] = append(assigns[obj], call)
			positions[obj] = append(positions[obj], as)
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			id, ok := ast.Unparen(res).(*ast.Ident)
			if !ok || !implementsError(pass.TypeOf(id)) {
				continue
			}
			obj := pass.ObjectOf(id)
			// Nearest assignment before this return.
			var src *ast.CallExpr
			for i, as := range positions[obj] {
				if as.Pos() < ret.Pos() {
					src = assigns[obj][i]
				}
			}
			if src == nil {
				continue
			}
			fn := callee(pass.Info, src)
			if fn == nil || fn.Pkg() == nil || fn.Pkg() == pass.Pkg {
				continue
			}
			pass.Reportf(res.Pos(),
				"persistence error from %s.%s returned without context; wrap with fmt.Errorf carrying section/generation detail and %%w",
				fn.Pkg().Name(), fn.Name())
		}
		return true
	})
}
