package checkers

import (
	"go/ast"
	"go/types"
	"strings"

	"autovalidate/internal/lint/analysis"
)

// ObsLog keeps the serving path's logging structured: code under
// internal/service and internal/cluster must log through the
// request-scoped slog logger (obs.Logger(ctx), or the component logger
// injected at construction), never through the stdlib log package, raw
// fmt prints, or direct writes to os.Stderr/os.Stdout. Ad-hoc prints
// bypass the JSON encoding and the trace_id/span_id correlation fields,
// so a line emitted that way cannot be joined with /debug/traces — and
// a stray stdout write corrupts the "listening on" handshake that
// supervisors parse. Other packages (cmd binaries, tooling) are out of
// scope.
var ObsLog = &analysis.Analyzer{
	Name: "obslog",
	Doc: "service and cluster code logs through slog with trace correlation, " +
		"not log.Printf, fmt prints, or raw os.Stderr/os.Stdout writes",
	Run: runObsLog,
}

// obslogScope reports whether the package is one the invariant covers.
func obslogScope(path string) bool {
	return strings.Contains(path, "internal/service") ||
		strings.Contains(path, "internal/cluster")
}

// logFuncs are the stdlib log package's printing entry points (Fatal
// and Panic variants are additionally covered by nopanic on the decode
// paths; here they are flagged everywhere in scope).
var logFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"Panic": true, "Panicf": true, "Panicln": true,
}

// fmtPrintFuncs write to stdout implicitly.
var fmtPrintFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
}

// fmtFprintFuncs write to an explicit writer; flagged when that writer
// is os.Stderr or os.Stdout.
var fmtFprintFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func runObsLog(pass *analysis.Pass) error {
	if !obslogScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				// Builtin print/println reach stderr unformatted.
				if _, builtin := pass.ObjectOf(id).(*types.Builtin); builtin &&
					(id.Name == "print" || id.Name == "println") {
					pass.Reportf(call.Pos(), "builtin %s writes raw output; use the slog logger so the line carries trace_id", id.Name)
				}
				return true
			}
			fn := callee(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "log":
				if logFuncs[fn.Name()] {
					pass.Reportf(call.Pos(), "log.%s bypasses structured logging; use the slog logger so the line carries trace_id", fn.Name())
				}
			case "fmt":
				switch {
				case fmtPrintFuncs[fn.Name()]:
					pass.Reportf(call.Pos(), "fmt.%s writes to stdout; use the slog logger so the line carries trace_id", fn.Name())
				case fmtFprintFuncs[fn.Name()] && len(call.Args) > 0 && isStdStream(pass, call.Args[0]):
					pass.Reportf(call.Pos(), "fmt.%s to os.%s bypasses structured logging; use the slog logger so the line carries trace_id",
						fn.Name(), stdStreamName(pass, call.Args[0]))
				}
			}
			return true
		})
	}
	return nil
}

// isStdStream reports whether expr denotes os.Stderr or os.Stdout.
func isStdStream(pass *analysis.Pass, expr ast.Expr) bool {
	return stdStreamName(pass, expr) != ""
}

// stdStreamName returns "Stderr"/"Stdout" when expr is that os
// package-level variable, else "".
func stdStreamName(pass *analysis.Pass, expr ast.Expr) string {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Stderr" && sel.Sel.Name != "Stdout") {
		return ""
	}
	obj := pass.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
		return ""
	}
	return sel.Sel.Name
}
