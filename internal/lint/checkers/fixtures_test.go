package checkers_test

import (
	"path/filepath"
	"testing"

	"autovalidate/internal/lint/checkers"
	"autovalidate/internal/lint/linttest"
)

// TestFixtures drives every analyzer over its fixture module in
// internal/lint/testdata: each `// want` comment must be produced and
// nothing else may be. Together the fixtures are the executable
// specification of the suite — every rule has at least one violation
// that fails without its fix and one compliant form that stays silent.
func TestFixtures(t *testing.T) {
	for _, a := range checkers.All() {
		t.Run(a.Name, func(t *testing.T) {
			t.Parallel()
			linttest.Run(t, filepath.Join("..", "testdata", a.Name), a)
		})
	}
}
