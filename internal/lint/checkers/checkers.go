// Package checkers holds avlint's six project-specific analyzers.
// Each one mechanizes a correctness invariant the cluster's design
// depends on but that nothing else enforces:
//
//   - swapdiscipline: copy-on-write atomic.Pointer swaps happen inside
//     the owning mutex and invalidate the rule cache in the same
//     critical section.
//   - nopanic: decode/parse/load/replication entry points return
//     errors on corrupt input; they never panic or log.Fatal.
//   - errwrapctx: errors crossing package boundaries wrap with %w, and
//     persistence errors carry section/generation context.
//   - uncheckedclose: write-path Close/Flush/Sync errors are checked
//     (an atomic save that ignores Close can publish a truncated
//     file), and HTTP response bodies are closed.
//   - bodylimit: handlers consume request bodies only through
//     http.MaxBytesReader.
//   - obslog: serving-path code (internal/service, internal/cluster)
//     logs through the structured slog logger so every line carries
//     trace correlation; raw log.Printf/fmt prints are flagged.
package checkers

import (
	"go/ast"
	"go/types"

	"autovalidate/internal/lint/analysis"
)

// All returns the avlint suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		SwapDiscipline,
		NoPanic,
		ErrWrapCtx,
		UncheckedClose,
		BodyLimit,
		ObsLog,
	}
}

// ByName resolves one analyzer by name.
func ByName(name string) (*analysis.Analyzer, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

var errorType = types.Universe.Lookup("error").Type()

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorType.Underlying().(*types.Interface))
}

// callee resolves the called function or method of a call expression,
// or nil for builtins, function values, and type conversions.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isFunc reports whether fn is the named function or method of the
// package at pkgPath ("" matches a method on a type from pkgPath).
func isFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// rootIdentObj walks a selector chain (s.cache.clear, s.mu) down to
// its base identifier and returns that identifier's object — the
// anchor for deciding that a Lock, a Store, and an invalidation all
// act on the same struct value. Non-chains return nil.
func rootIdentObj(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return info.ObjectOf(e)
		case *ast.SelectorExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// namedTypeIs reports whether t (after pointer indirection) is the
// named type pkgPath.name, ignoring type arguments.
func namedTypeIs(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// funcDecls yields every function declaration with a body across the
// pass's files.
func funcDecls(pass *analysis.Pass) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}
