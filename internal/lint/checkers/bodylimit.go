package checkers

import (
	"go/ast"
	"go/token"
	"go/types"

	"autovalidate/internal/lint/analysis"
)

// BodyLimit enforces the request-body bound on every HTTP handler: a
// function that takes (http.ResponseWriter, *http.Request) may only
// consume r.Body through http.MaxBytesReader (or after reassigning
// r.Body to one). An unbounded json.NewDecoder(r.Body) or
// io.ReadAll(r.Body) lets a single request balloon a node's heap —
// under gateway fan-out that is a one-request cluster outage.
//
// Handlers that delegate to a bounded helper (the service's
// decodeJSON) never touch r.Body directly and pass; the helper itself
// is handler-shaped and is checked instead.
var BodyLimit = &analysis.Analyzer{
	Name: "bodylimit",
	Doc: "HTTP handlers must bound request bodies with http.MaxBytesReader " +
		"before reading them",
	Run: runBodyLimit,
}

func runBodyLimit(pass *analysis.Pass) error {
	for _, fd := range funcDecls(pass) {
		if req := requestParam(pass, fd.Type); req != nil {
			checkBodyUses(pass, fd.Body, req)
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				if req := requestParam(pass, lit.Type); req != nil {
					checkBodyUses(pass, lit.Body, req)
				}
			}
			return true
		})
	}
	return nil
}

// requestParam returns the *http.Request parameter object of a
// handler-shaped signature: one that also includes an
// http.ResponseWriter. Other request-taking helpers (middleware
// constructors, clients) are out of scope — without a ResponseWriter
// there is no handler contract to enforce.
func requestParam(pass *analysis.Pass, ft *ast.FuncType) types.Object {
	if ft.Params == nil {
		return nil
	}
	var req types.Object
	hasWriter := false
	for _, field := range ft.Params.List {
		t := pass.TypeOf(field.Type)
		switch {
		case namedTypeIs(t, "net/http", "ResponseWriter"):
			hasWriter = true
		case namedTypeIs(t, "net/http", "Request"):
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					req = obj
				}
			}
		}
	}
	if !hasWriter {
		return nil
	}
	return req
}

// checkBodyUses flags each consumption of req.Body not routed through
// http.MaxBytesReader.
func checkBodyUses(pass *analysis.Pass, body *ast.BlockStmt, req types.Object) {
	// parents maps each node to its parent for context classification.
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})

	// A rebinding r.Body = http.MaxBytesReader(...) bounds every later
	// read through r.Body; record where the first one happens.
	rebound := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		sel, ok := as.Lhs[0].(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Body" {
			return true
		}
		base, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || pass.ObjectOf(base) != req {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if ok && isFunc(callee(pass.Info, call), "net/http", "MaxBytesReader") {
			if rebound == token.NoPos || as.Pos() < rebound {
				rebound = as.Pos()
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Body" {
			return true
		}
		base, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || pass.ObjectOf(base) != req {
			return true
		}
		if rebound != token.NoPos && sel.Pos() > rebound {
			return true
		}
		if allowedBodyContext(pass, parents, sel) {
			return true
		}
		pass.Reportf(sel.Pos(), "request body consumed without http.MaxBytesReader bound; a single request can exhaust the node")
		return false
	})
}

// allowedBodyContext reports whether this r.Body use is one of the
// sanctioned forms: an argument to http.MaxBytesReader, a nil
// comparison, a Close call, or the target of a rebinding assignment
// (r.Body = http.MaxBytesReader(...)).
func allowedBodyContext(pass *analysis.Pass, parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	parent := parents[sel]
	for p := parent; p != nil; p = parents[p] {
		if call, ok := p.(*ast.CallExpr); ok {
			if isFunc(callee(pass.Info, call), "net/http", "MaxBytesReader") {
				return true
			}
			break
		}
	}
	switch p := parent.(type) {
	case *ast.BinaryExpr:
		// r.Body != nil and friends.
		return true
	case *ast.SelectorExpr:
		// r.Body.Close() — closing without reading is fine.
		return p.Sel.Name == "Close"
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == sel {
				return true
			}
		}
	}
	return false
}
