package checkers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"autovalidate/internal/lint/analysis"
)

// NoPanic enforces the "error, never panic" contract on the paths that
// consume persisted or replicated bytes: any exported function whose
// name marks it as a decode/parse/load/replication entry point must
// not be able to reach a panic, log.Fatal, or os.Exit within its
// package. Corrupt input is a data problem for the caller, not a
// process-death sentence for a validation node serving live traffic.
//
// Entry points are exported functions and methods whose names start
// with one of: Parse, Decode, Load, Read, Open, Unmarshal, Apply,
// Replicate, Install, Ingest, Fetch. Must* helpers are exempt — a
// Must prefix is Go's canonical "panics on error" marker — but entry
// points must not call them.
var NoPanic = &analysis.Analyzer{
	Name: "nopanic",
	Doc: "decode/parse/load/replication entry points must return errors on corrupt " +
		"input, never panic, log.Fatal, or os.Exit",
	Run: runNoPanic,
}

var entryPrefixes = []string{
	"Parse", "Decode", "Load", "Read", "Open", "Unmarshal",
	"Apply", "Replicate", "Install", "Ingest", "Fetch",
}

// isEntryPoint reports whether an exported function name marks a
// corrupt-input-facing entry point.
func isEntryPoint(name string) bool {
	if !ast.IsExported(name) || strings.HasPrefix(name, "Must") {
		return false
	}
	for _, p := range entryPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// sink is one panic-like call site inside a function.
type sink struct {
	pos  token.Pos
	what string
}

func runNoPanic(pass *analysis.Pass) error {
	decls := funcDecls(pass)
	declOf := map[*types.Func]*ast.FuncDecl{}
	for _, fd := range decls {
		if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
			declOf[fn] = fd
		}
	}

	// Per function: the panic-like sites in its own body (closures
	// included — a panicking goroutine or callback is still this
	// function's panic) and its same-package direct callees.
	sinks := map[*types.Func][]sink{}
	calls := map[*types.Func][]*types.Func{}
	for fn, fd := range declOf {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					sinks[fn] = append(sinks[fn], sink{call.Pos(), "panic"})
					return true
				}
			}
			cal := callee(pass.Info, call)
			if cal == nil {
				return true
			}
			switch {
			case cal.Pkg() != nil && cal.Pkg().Path() == "log" && strings.HasPrefix(cal.Name(), "Fatal"),
				cal.Pkg() != nil && cal.Pkg().Path() == "log" && strings.HasPrefix(cal.Name(), "Panic"):
				sinks[fn] = append(sinks[fn], sink{call.Pos(), "log." + cal.Name()})
			case isFunc(cal, "os", "Exit"):
				sinks[fn] = append(sinks[fn], sink{call.Pos(), "os.Exit"})
			case cal.Pkg() == pass.Pkg:
				if _, local := declOf[cal]; local {
					calls[fn] = append(calls[fn], cal)
				}
			}
			return true
		})
	}

	// BFS from each entry point; report each reachable sink site once,
	// with the shortest call path that exposes it.
	reported := map[token.Pos]bool{}
	for _, fd := range decls {
		fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
		if !ok || !isEntryPoint(fn.Name()) {
			continue
		}
		parent := map[*types.Func]*types.Func{fn: nil}
		queue := []*types.Func{fn}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, s := range sinks[cur] {
				if reported[s.pos] {
					continue
				}
				reported[s.pos] = true
				pass.Reportf(s.pos, "%s reachable from entry point %s (%s); corrupt input must return an error",
					s.what, fn.Name(), callPath(parent, cur, fn))
			}
			for _, next := range calls[cur] {
				if _, seen := parent[next]; !seen {
					parent[next] = cur
					queue = append(queue, next)
				}
			}
		}
	}
	return nil
}

// callPath renders "via A → B" for the BFS path entry→…→cur, or "direct
// call" when the sink is in the entry point itself.
func callPath(parent map[*types.Func]*types.Func, cur, entry *types.Func) string {
	if cur == entry {
		return "direct call"
	}
	var chain []string
	for f := cur; f != nil; f = parent[f] {
		chain = append([]string{f.Name()}, chain...)
	}
	return "via " + strings.Join(chain, " → ")
}
