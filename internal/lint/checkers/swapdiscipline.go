package checkers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"autovalidate/internal/lint/analysis"
)

// SwapDiscipline enforces the copy-on-write swap protocol established
// in PR 3: a guarded atomic.Pointer field may only be Store'd/Swap'd
// while the owning mutex is held, and the declared cache invalidation
// must happen in the same critical section. Fields opt in through
// directives in their doc comment:
//
//	//avlint:guardedBy mu
//	//avlint:invalidate cache.clear
//	idx atomic.Pointer[index.Index]
//
// A Store outside the mu critical section lets an in-flight request
// pair a new index with stale cached rules (or vice versa) — the
// silent cluster-wide corruption this analyzer exists to prevent.
var SwapDiscipline = &analysis.Analyzer{
	Name: "swapdiscipline",
	Doc: "atomic.Pointer fields marked //avlint:guardedBy must be swapped inside " +
		"the owning mutex and invalidate their declared cache in the same critical section",
	Run: runSwapDiscipline,
}

// guardSpec is one annotated field's contract.
type guardSpec struct {
	mutex      string // sibling mutex field name
	invalidate string // dotted call chain relative to the struct, e.g. "cache.clear"
}

func runSwapDiscipline(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, fd := range funcDecls(pass) {
		checkSwapsInFunc(pass, fd, guards)
	}
	return nil
}

// collectGuards finds every struct field annotated with
// //avlint:guardedBy, keyed by the field's types.Var.
func collectGuards(pass *analysis.Pass) map[*types.Var]guardSpec {
	guards := map[*types.Var]guardSpec{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				spec, ok := parseGuardDirectives(field.Doc)
				if !ok {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						if !namedTypeIs(v.Type(), "sync/atomic", "Pointer") {
							pass.Reportf(name.Pos(), "//avlint:guardedBy on %s, which is not an atomic.Pointer", name.Name)
							continue
						}
						guards[v] = spec
					}
				}
			}
			return true
		})
	}
	return guards
}

// parseGuardDirectives extracts the guardedBy/invalidate directives
// from a field's doc comment.
func parseGuardDirectives(doc *ast.CommentGroup) (guardSpec, bool) {
	var spec guardSpec
	if doc == nil {
		return spec, false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if rest, ok := strings.CutPrefix(text, "avlint:guardedBy"); ok {
			spec.mutex = strings.TrimSpace(rest)
		}
		if rest, ok := strings.CutPrefix(text, "avlint:invalidate"); ok {
			spec.invalidate = strings.TrimSpace(rest)
		}
	}
	return spec, spec.mutex != ""
}

// checkSwapsInFunc verifies every Store/Swap of a guarded field inside
// one function against the lock/invalidate protocol, using source
// order within the function as the approximation of control flow (the
// protocol's critical sections are straight-line by design).
func checkSwapsInFunc(pass *analysis.Pass, fd *ast.FuncDecl, guards map[*types.Var]guardSpec) {
	type event struct {
		pos  token.Pos
		root types.Object
		name string // "lock", "unlock", "invalidate:<spec>"
	}
	var events []event
	type swap struct {
		pos   token.Pos
		root  types.Object
		field *types.Var
		spec  guardSpec
		verb  string
	}
	var swaps []swap

	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		method := sel.Sel.Name
		recv := ast.Unparen(sel.X)

		// Guarded-field mutation: <root>...<field>.Store(x) / .Swap(x).
		if method == "Store" || method == "Swap" {
			if fieldSel, ok := recv.(*ast.SelectorExpr); ok {
				if v, ok := pass.Info.Uses[fieldSel.Sel].(*types.Var); ok {
					if spec, guarded := guards[v]; guarded {
						swaps = append(swaps, swap{
							pos: call.Pos(), root: rootIdentObj(pass.Info, fieldSel.X),
							field: v, spec: spec, verb: method,
						})
					}
				}
			}
		}

		// Mutex transitions: <root>.<mutex>.Lock() / .Unlock(). A
		// deferred Unlock holds the section open to function end, so
		// only direct Unlock statements close it.
		if method == "Lock" || method == "Unlock" {
			if mutexSel, ok := recv.(*ast.SelectorExpr); ok {
				name := strings.ToLower(method)
				if name == "unlock" && inDefer(fd, call.Pos()) {
					return true
				}
				events = append(events, event{
					pos: call.Pos(), root: rootIdentObj(pass.Info, mutexSel.X),
					name: name + ":" + mutexSel.Sel.Name,
				})
			}
		}

		// Invalidation: <root>.<chain>() matching a guard's spec.
		if chain, root := selectorChain(pass.Info, sel); chain != "" {
			events = append(events, event{pos: call.Pos(), root: root, name: "invalidate:" + chain})
		}
		return true
	})

	for _, sw := range swaps {
		field := sw.field.Name()
		// The latest Lock of the owning mutex on the same struct value
		// before the swap, not yet closed by an Unlock.
		lockPos := token.NoPos
		for _, ev := range events {
			if ev.pos >= sw.pos || ev.root == nil || ev.root != sw.root {
				continue
			}
			switch ev.name {
			case "lock:" + sw.spec.mutex:
				lockPos = ev.pos
			case "unlock:" + sw.spec.mutex:
				lockPos = token.NoPos
			}
		}
		if lockPos == token.NoPos {
			pass.Reportf(sw.pos, "%s of guarded atomic.Pointer %s outside the %s critical section (see //avlint:guardedBy on the field)",
				sw.verb, field, sw.spec.mutex)
			continue
		}
		if sw.spec.invalidate == "" {
			continue
		}
		// The invalidation must land between that Lock and the first
		// direct Unlock after it (function end if none).
		sectionEnd := token.Pos(1 << 60)
		for _, ev := range events {
			if ev.name == "unlock:"+sw.spec.mutex && ev.root == sw.root && ev.pos > lockPos && ev.pos < sectionEnd {
				sectionEnd = ev.pos
			}
		}
		invalidated := false
		for _, ev := range events {
			if ev.name == "invalidate:"+sw.spec.invalidate && ev.root == sw.root && ev.pos > lockPos && ev.pos < sectionEnd {
				invalidated = true
				break
			}
		}
		if !invalidated {
			pass.Reportf(sw.pos, "%s of guarded atomic.Pointer %s must invalidate via %s() in the same %s critical section",
				sw.verb, field, sw.spec.invalidate, sw.spec.mutex)
		}
	}
}

// selectorChain renders a call target like s.cache.clear as
// "cache.clear" plus the root identifier's object; chains that do not
// bottom out in an identifier return "".
func selectorChain(info *types.Info, sel *ast.SelectorExpr) (string, types.Object) {
	var parts []string
	expr := ast.Expr(sel)
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			parts = append([]string{e.Sel.Name}, parts...)
			expr = e.X
		case *ast.Ident:
			return strings.Join(parts, "."), info.ObjectOf(e)
		default:
			return "", nil
		}
	}
}

// inDefer reports whether pos falls inside a defer statement of fd.
func inDefer(fd *ast.FuncDecl, pos token.Pos) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		if found {
			return false
		}
		if d, ok := n.(*ast.DeferStmt); ok && d.Pos() <= pos && pos <= d.End() {
			found = true
			return false
		}
		return true
	})
	return found
}
