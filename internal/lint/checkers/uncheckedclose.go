package checkers

import (
	"go/ast"
	"go/types"
	"strings"

	"autovalidate/internal/lint/analysis"
)

// UncheckedClose enforces the write-path durability contract:
//
//   - A file opened for writing (os.Create / os.CreateTemp /
//     os.OpenFile) must not have its Close or Sync error discarded —
//     on the atomic-save path, an ignored Close error is how a
//     truncated index gets renamed over a good one.
//   - A bufio.Writer's Flush error must be checked: Flush is where
//     buffered write failures finally surface.
//   - An *http.Response body obtained in a function must be closed on
//     that path, or the connection leaks under the cluster's
//     replication polling.
//
// An explicit `_ = f.Close()` is a conscious, reviewable discard (used
// on already-failing cleanup paths) and is not flagged.
var UncheckedClose = &analysis.Analyzer{
	Name: "uncheckedclose",
	Doc: "write-path Close/Flush/Sync errors must be checked and HTTP response " +
		"bodies closed",
	Run: runUncheckedClose,
}

func runUncheckedClose(pass *analysis.Pass) error {
	for _, fd := range funcDecls(pass) {
		checkWriterDiscards(pass, fd)
		checkResponseBodies(pass, fd)
	}
	return nil
}

// writerKind classifies how a variable came to be a write handle.
type writerKind int

const (
	notWriter writerKind = iota
	writeFile            // os.Create / os.CreateTemp / os.OpenFile
	bufWriter            // bufio.NewWriter / NewWriterSize
)

// writerOrigin classifies the call producing a write handle.
func writerOrigin(info *types.Info, call *ast.CallExpr) writerKind {
	fn := callee(info, call)
	switch {
	case isFunc(fn, "os", "Create"), isFunc(fn, "os", "CreateTemp"), isFunc(fn, "os", "OpenFile"):
		return writeFile
	case isFunc(fn, "bufio", "NewWriter"), isFunc(fn, "bufio", "NewWriterSize"):
		return bufWriter
	}
	return notWriter
}

// checkWriterDiscards flags discarded Close/Sync on write files and
// discarded Flush on bufio.Writers, in both statement and defer form.
func checkWriterDiscards(pass *analysis.Pass, fd *ast.FuncDecl) {
	writers := map[types.Object]writerKind{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		kind := writerOrigin(pass.Info, call)
		if kind == notWriter {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if obj := pass.ObjectOf(id); obj != nil {
				writers[obj] = kind
			}
		}
		return true
	})
	if len(writers) == 0 {
		return
	}

	flag := func(call *ast.CallExpr, deferred bool) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return
		}
		kind, tracked := writers[pass.ObjectOf(id)]
		if !tracked {
			return
		}
		method := sel.Sel.Name
		bad := (kind == writeFile && (method == "Close" || method == "Sync")) ||
			(kind == bufWriter && method == "Flush")
		if !bad {
			return
		}
		how := "discarded"
		if deferred {
			how = "discarded by defer"
		}
		pass.Reportf(call.Pos(), "%s.%s() error %s on a write path; check it or acknowledge with `_ =` on the failure branch",
			id.Name, method, how)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				flag(call, false)
			}
		case *ast.DeferStmt:
			flag(s.Call, true)
		case *ast.GoStmt:
			flag(s.Call, false)
		}
		return true
	})
}

// checkResponseBodies requires every *http.Response produced in the
// function to have resp.Body closed somewhere in it, unless the
// response escapes (returned or passed along whole).
func checkResponseBodies(pass *analysis.Pass, fd *ast.FuncDecl) {
	resps := map[types.Object]*ast.CallExpr{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := callee(pass.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "net/http" {
			return true
		}
		switch fn.Name() {
		case "Do", "Get", "Post", "PostForm", "Head":
		default:
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.ObjectOf(id); obj != nil {
				resps[obj] = call
			}
		}
		return true
	})

	for obj, call := range resps {
		closed, escapes := false, false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || pass.ObjectOf(id) != obj || id.Pos() <= call.End() {
				return true
			}
			use := outermostSelector(fd, id)
			switch parent := use.(type) {
			case *ast.SelectorExpr:
				// resp.Body.Close() marks it closed; any other
				// selector use is fine either way.
				if chain, _ := selectorChain(pass.Info, parent); strings.HasSuffix(chain, "Body.Close") {
					closed = true
				}
			default:
				// The response is used whole (returned, stored,
				// passed): ownership moved, closing is the new
				// holder's job.
				escapes = true
			}
			return true
		})
		if !closed && !escapes {
			pass.Reportf(call.Pos(), "http response body never closed on this path; the connection cannot be reused and leaks")
		}
	}
}

// outermostSelector climbs from an identifier to the widest selector
// chain containing it, returning the parent node that consumes the
// chain (or the identifier itself when used bare).
func outermostSelector(fd *ast.FuncDecl, id *ast.Ident) ast.Node {
	var best ast.Node = id
	ast.Inspect(fd, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if sel.Pos() <= id.Pos() && id.End() <= sel.End() {
				if best == nil || (sel.Pos() <= best.Pos() && best.End() <= sel.End()) {
					best = sel
				}
			}
		}
		return true
	})
	return best
}
