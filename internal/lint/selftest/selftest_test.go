// Package selftest turns avlint on its own repository: the meta-test
// asserting the codebase stays clean under the full analyzer suite, and
// that every //avlint:allow carries a reason. CI runs the same suite
// through `go vet -vettool`; this test is the laptop-local equivalent,
// so a violation fails `go test ./...` before it ever reaches CI.
package selftest

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autovalidate/internal/lint/analysis"
	"autovalidate/internal/lint/checkers"
	"autovalidate/internal/lint/load"
)

// repoRoot locates the module root from this package's directory.
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not at %s: %v", root, err)
	}
	return root
}

// TestRepoIsLintClean runs the full analyzer suite over every package
// in the repository and fails on any finding. This is the invariant the
// whole PR establishes: the codebase itself satisfies its own lint
// contracts.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole repository")
	}
	units, err := load.Packages(repoRoot(t), []string{"./..."})
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	if len(units) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, u := range units {
		for _, f := range analysis.Run(u, checkers.All()) {
			t.Errorf("%s", f)
		}
	}
}

// TestAllowCommentsCarryReasons enforces the suppression convention:
// every //avlint:allow names at least one analyzer and states a reason,
// so a suppression is always reviewable without archaeology.
func TestAllowCommentsCarryReasons(t *testing.T) {
	root := repoRoot(t)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Fixture allows exercise the mechanism, not the convention.
			if d.Name() == "testdata" || strings.HasPrefix(d.Name(), ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				spec, ok := strings.CutPrefix(text, "avlint:allow")
				if !ok {
					continue
				}
				line := fset.Position(c.Pos()).Line
				fields := strings.Fields(strings.TrimSpace(spec))
				if len(fields) == 0 {
					t.Errorf("%s:%d: //avlint:allow without an analyzer name", rel, line)
					continue
				}
				if len(fields) < 2 {
					t.Errorf("%s:%d: //avlint:allow %s without a reason", rel, line, fields[0])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
