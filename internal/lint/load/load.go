// Package load turns Go package patterns into type-checked analysis
// units without golang.org/x/tools/go/packages: it shells out to
// `go list -export -deps -json`, parses each target package's sources
// with go/parser, and type-checks them against the compiled export
// data of their dependencies via go/importer. The result is exactly
// what internal/lint/analysis needs, built entirely from the standard
// library and the already-installed toolchain.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"

	"autovalidate/internal/lint/analysis"
)

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Module     *struct{ GoVersion string }
	Error      *struct{ Err string }
}

// Packages loads and type-checks every package matched by patterns,
// resolving them relative to dir (empty = current directory). Each
// returned unit carries its import path via Pkg.Path(). A package that
// fails to parse or type-check is returned as an error: avlint's
// findings are only meaningful on code the compiler accepts.
func Packages(dir string, patterns []string) ([]*analysis.Unit, error) {
	pkgs, err := golist(dir, patterns)
	if err != nil {
		return nil, err
	}

	// Export data for every listed package (deps and targets alike)
	// feeds one shared importer so common dependencies type-check once.
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := ExportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})

	var units []*analysis.Unit
	for _, p := range pkgs {
		if p.DepOnly {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: loading %s: %s", p.ImportPath, p.Error.Err)
		}
		var files []string
		for _, f := range p.GoFiles {
			files = append(files, joinDir(p.Dir, f))
		}
		if len(files) == 0 {
			// Test-only packages have nothing for the analyzers to see.
			continue
		}
		goVersion := ""
		if p.Module != nil && p.Module.GoVersion != "" {
			goVersion = "go" + p.Module.GoVersion
		}
		unit, err := Check(fset, p.ImportPath, files, imp, goVersion)
		if err != nil {
			return nil, err
		}
		units = append(units, unit)
	}
	return units, nil
}

// golist runs `go list -e -export -deps -json` over the patterns.
func golist(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// Check parses files and type-checks them as one package against imp.
// It is shared by the pattern loader above and by cmd/avlint's
// unitchecker mode (which gets its file list from go vet's config
// instead of go list).
func Check(fset *token.FileSet, importPath string, files []string, imp types.Importer, goVersion string) (*analysis.Unit, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		// Keep going past the first error; the joined error below
		// reports them all at once.
		Error: func(error) {},
	}
	pkg, err := conf.Check(importPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &analysis.Unit{Fset: fset, Files: syntax, Pkg: pkg, Info: info}, nil
}

// ExportImporter returns a types.Importer that reads compiled export
// data, resolving each import path to its export file via lookup.
func ExportImporter(fset *token.FileSet, lookup func(path string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := lookup(path)
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// joinDir makes name absolute relative to dir; go list emits file
// names relative to the package directory.
func joinDir(dir, name string) string {
	if strings.HasPrefix(name, "/") {
		return name
	}
	return dir + "/" + name
}
