// Fixture for the swapdiscipline analyzer: every way a guarded
// atomic.Pointer swap can honor or violate the lock + invalidate
// protocol declared on the field.
package fixture

import (
	"sync"
	"sync/atomic"
)

type ruleCache struct{}

func (c *ruleCache) clear() {}

type server struct {
	mu    sync.Mutex
	cache *ruleCache

	//avlint:guardedBy mu
	//avlint:invalidate cache.clear
	idx atomic.Pointer[int]

	//avlint:guardedBy mu
	plain int // want "not an atomic.Pointer"
}

func (s *server) goodSwap(next *int) {
	s.mu.Lock()
	s.idx.Store(next)
	s.cache.clear()
	s.mu.Unlock()
}

func (s *server) goodDeferredUnlock(next *int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.idx.Store(next)
	s.cache.clear()
}

func (s *server) storeWithoutLock(next *int) {
	s.idx.Store(next) // want "outside the mu critical section"
}

func (s *server) swapWithoutLock(next *int) *int {
	return s.idx.Swap(next) // want "outside the mu critical section"
}

func (s *server) storeAfterUnlock(next *int) {
	s.mu.Lock()
	s.mu.Unlock()
	s.idx.Store(next) // want "outside the mu critical section"
}

func (s *server) missingInvalidate(next *int) {
	s.mu.Lock()
	s.idx.Store(next) // want "must invalidate via cache.clear"
	s.mu.Unlock()
}

func (s *server) invalidateOutsideSection(next *int) {
	s.mu.Lock()
	s.idx.Store(next) // want "must invalidate via cache.clear"
	s.mu.Unlock()
	s.cache.clear()
}

func (s *server) allowedConstructorStyle(next *int) {
	//avlint:allow swapdiscipline fixture exercises suppression
	s.idx.Store(next)
}
