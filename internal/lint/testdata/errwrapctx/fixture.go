// Fixture for the errwrapctx analyzer, rule 1: error values formatted
// into fmt.Errorf must use %w.
package fixture

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

func flattened(err error) error {
	return fmt.Errorf("loading index: %v", err) // want "without %w"
}

func wrapped(err error) error {
	return fmt.Errorf("loading index: %w", err)
}

func noErrorArg(n int) error {
	return fmt.Errorf("bad shard count %d", n)
}

func mixedArgs(path string, err error) error {
	return fmt.Errorf("reading %s: %s", path, err) // want "without %w"
}
