// Rule 2 of errwrapctx applies to persist*.go files: errors from other
// packages must not be returned bare.
package fixture

import (
	"fmt"
	"os"
)

func loadBare(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err // want "persistence error from os.ReadFile returned without context"
	}
	return data, nil
}

func loadWrapped(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("persist: reading snapshot %s: %w", path, err)
	}
	return data, nil
}

func loadLocal(path string) ([]byte, error) {
	data, err := localRead(path)
	if err != nil {
		// Same-package errors already carry their context.
		return nil, err
	}
	return data, nil
}

func localRead(path string) ([]byte, error) {
	return nil, fmt.Errorf("persist: no section header in %s", path)
}
