// Fixture for the bodylimit analyzer: HTTP handlers must route request
// bodies through http.MaxBytesReader.
package fixture

import (
	"encoding/json"
	"io"
	"net/http"
)

func unbounded(w http.ResponseWriter, r *http.Request) {
	b, _ := io.ReadAll(r.Body) // want "without http.MaxBytesReader"
	w.Write(b)
}

func unboundedDecoder(w http.ResponseWriter, r *http.Request) {
	var v any
	_ = json.NewDecoder(r.Body).Decode(&v) // want "without http.MaxBytesReader"
}

func bounded(w http.ResponseWriter, r *http.Request) {
	b, _ := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	w.Write(b)
}

func rebound(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	var v any
	_ = json.NewDecoder(r.Body).Decode(&v)
}

func closeOnly(w http.ResponseWriter, r *http.Request) {
	if r.Body != nil {
		_ = r.Body.Close()
	}
	w.WriteHeader(http.StatusNoContent)
}

var handlerLit = func(w http.ResponseWriter, r *http.Request) {
	var v any
	_ = json.NewDecoder(r.Body).Decode(&v) // want "without http.MaxBytesReader"
}

// client is not handler-shaped (no ResponseWriter): reading the body of
// an outgoing request is out of scope.
func client(r *http.Request) ([]byte, error) {
	return io.ReadAll(r.Body)
}
