// Fixture for the obslog analyzer, cluster side: the gateway and
// replication code are in scope too.
package cluster

import (
	"fmt"
	"log"
	"os"
)

func gatewayLogs(member string, err error) {
	log.Print("member down: ", member)          // want `log\.Print bypasses structured logging`
	fmt.Fprint(os.Stderr, "failover: ", member) // want `fmt\.Fprint to os\.Stderr`
	_ = err
}

// errorf builds an error; only printing entry points are flagged.
func errorf(member string) error {
	return fmt.Errorf("member %s unreachable", member)
}
