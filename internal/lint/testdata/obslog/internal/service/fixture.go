// Fixture for the obslog analyzer, service side: serving-path code
// must log through slog, never the stdlib log package, fmt prints, or
// raw standard-stream writes.
package service

import (
	"fmt"
	"log"
	"log/slog"
	"os"
)

func stdlibLog(err error) {
	log.Printf("request failed: %v", err) // want `log\.Printf bypasses structured logging`
	log.Println("still going")            // want `log\.Println bypasses structured logging`
}

func fatalLog(err error) {
	log.Fatalf("cannot continue: %v", err) // want `log\.Fatalf bypasses structured logging`
}

func rawStderr(err error) {
	fmt.Fprintf(os.Stderr, "oops: %v\n", err) // want `fmt\.Fprintf to os\.Stderr`
	fmt.Fprintln(os.Stdout, "done")           // want `fmt\.Fprintln to os\.Stdout`
}

func stdoutPrint() {
	fmt.Println("listening") // want `fmt\.Println writes to stdout`
}

func builtinPrint() {
	println("debugging") // want `builtin println writes raw output`
}

// structured is the compliant form: the injected component logger (or
// the request-scoped obs.Logger) carries trace correlation.
func structured(logger *slog.Logger, err error) {
	logger.Warn("request failed", slog.String("error", err.Error()))
}

// toFile is fine: only the process's standard streams are reserved.
func toFile(f *os.File, err error) {
	fmt.Fprintf(f, "oops: %v\n", err)
}

// sprintf formats without writing anywhere; not a logging bypass.
func sprintf(err error) string {
	return fmt.Sprintf("wrapped: %v", err)
}

func allowed(err error) {
	//avlint:allow obslog the startup handshake line is parsed from stdout
	fmt.Println("service: listening on :0")
}
