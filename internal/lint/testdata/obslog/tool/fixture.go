// Package tool is outside internal/service and internal/cluster, so
// the obslog invariant does not apply: command-line tooling prints to
// its streams freely.
package tool

import (
	"fmt"
	"log"
	"os"
)

func report(err error) {
	log.Printf("tool: %v", err)
	fmt.Fprintln(os.Stderr, "tool:", err)
	fmt.Println("tool: done")
}
