// Fixture for the nopanic analyzer: panic-like sinks reachable (and
// not reachable) from decode/parse/load-shaped entry points.
package fixture

import (
	"errors"
	"log"
	"os"
)

func ParseThing(b []byte) (int, error) {
	if len(b) == 0 {
		panic("empty input") // want "panic reachable from entry point ParseThing"
	}
	return int(b[0]), nil
}

func DecodeThing(b []byte) int {
	return helper(b)
}

func helper(b []byte) int {
	if len(b) == 0 {
		log.Fatal("empty input") // want "log.Fatal reachable from entry point DecodeThing"
	}
	return int(b[0])
}

func LoadThing(path string) error {
	if path == "" {
		os.Exit(2) // want "os.Exit reachable from entry point LoadThing"
	}
	return nil
}

// ReadThing does it right: corrupt input comes back as an error.
func ReadThing(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, errors.New("empty input")
	}
	return int(b[0]), nil
}

// MustDecode panics by convention (Must prefix); not an entry point.
func MustDecode(b []byte) int {
	if len(b) == 0 {
		panic("empty input")
	}
	return int(b[0])
}

// validate is unexported: its panic is only a finding if an entry
// point can reach it, and none does.
func validate() {
	panic("internal invariant")
}

// HandleThing is exported but not entry-shaped; its panic is out of
// scope for this analyzer.
func HandleThing() {
	panic("boom")
}
