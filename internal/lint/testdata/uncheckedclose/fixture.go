// Fixture for the uncheckedclose analyzer: discarded Close/Flush/Sync
// on write handles and leaked HTTP response bodies.
package fixture

import (
	"bufio"
	"io"
	"net/http"
	"os"
)

func discardedClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	f.Close() // want `f.Close\(\) error discarded`
	return nil
}

func deferredClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want "discarded by defer"
	_, err = f.WriteString("payload")
	return err
}

func discardedSync(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	f.Sync() // want `f.Sync\(\) error discarded`
	return f.Close()
}

func checkedClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return f.Close()
}

func acknowledgedClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// Conscious discard: the explicit blank assignment is reviewable.
	_ = f.Close()
	return nil
}

func allowedClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	//avlint:allow uncheckedclose fixture exercises suppression
	f.Close()
	return nil
}

func discardedFlush(w io.Writer) {
	bw := bufio.NewWriter(w)
	_, _ = bw.WriteString("payload")
	bw.Flush() // want `bw.Flush\(\) error discarded`
}

func checkedFlush(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("payload"); err != nil {
		return err
	}
	return bw.Flush()
}

func leakedBody(url string) (int, error) {
	resp, err := http.Get(url) // want "response body never closed"
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}

func closedBody(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.ReadAll(resp.Body)
	return err
}

func escapingBody(url string) (*http.Response, error) {
	resp, err := http.Get(url)
	return resp, err
}
