// Package linttest runs avlint analyzers over self-contained fixture
// modules and checks their findings against expectations embedded in
// the fixture source, in the style of x/tools' analysistest:
//
//	f.Close() // want "error discarded"
//
// A `// want "regex"` comment expects exactly one finding on its line
// whose message matches the regex; every finding must be expected.
// Fixtures live in internal/lint/testdata/<analyzer>/, each its own
// tiny module (a go.mod is required so the loader treats the fixture
// as a root package and not part of this repo), importing only the
// standard library so loading works offline.
package linttest

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"autovalidate/internal/lint/analysis"
	"autovalidate/internal/lint/load"
)

// want is one expectation: a finding on file:line matching rx.
type want struct {
	file string
	line int
	rx   *regexp.Regexp
	hit  bool
}

// wantRE accepts either quote style; backticks keep regexes with
// escaped metacharacters readable.
var wantRE = regexp.MustCompile("//\\s*want\\s+(?:\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

// Run loads the fixture module rooted at dir, applies the analyzers,
// and reports mismatches between findings and `// want` comments.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	units, err := load.Packages(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(units) == 0 {
		t.Fatalf("fixture %s contains no packages", dir)
	}
	var findings []analysis.Finding
	for _, u := range units {
		findings = append(findings, analysis.Run(u, analyzers)...)
	}

	wants := collectWants(t, dir)
	for _, f := range findings {
		if w := match(wants, f); w != nil {
			w.hit = true
			continue
		}
		t.Errorf("unexpected finding: %s", f)
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

// match finds the first unmatched want covering the finding.
func match(wants []*want, f analysis.Finding) *want {
	for _, w := range wants {
		if !w.hit && w.file == f.Position.Filename && w.line == f.Position.Line && w.rx.MatchString(f.Message) {
			return w
		}
	}
	return nil
}

// collectWants scans every fixture source file for want comments.
func collectWants(t *testing.T, dir string) []*want {
	t.Helper()
	var wants []*want
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		abs, err := filepath.Abs(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			expr := m[1]
			if expr == "" {
				expr = m[2]
			}
			rx, err := regexp.Compile(expr)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, expr, err)
			}
			wants = append(wants, &want{file: abs, line: i + 1, rx: rx})
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scanning fixture %s: %v", dir, err)
	}
	return wants
}
