// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis vocabulary — Analyzer, Pass,
// Diagnostic — sized for avlint's project-specific checkers. The
// toolchain image this repo builds in has no module proxy access, so
// the x/tools framework itself cannot be vendored; the six avlint
// analyzers only need the small, stable core of its API, which this
// package provides on top of the standard library's go/ast and
// go/types.
//
// Suppression: a finding is suppressed by an
//
//	//avlint:allow <name>[,<name>...] [reason]
//
// comment on the finding's line or on the line directly above it.
// <name> is an analyzer name or "all". The reason is free text; by
// convention every allow states one (the meta-test in
// internal/lint/selftest enforces the convention repo-wide).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //avlint:allow comments. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph description printed by avlint -help:
	// the invariant guarded and why it matters.
	Doc string
	// Run inspects one package and reports findings via pass.Report.
	Run func(*Pass) error
}

// Pass carries one package's parsed and type-checked form to an
// analyzer. Files holds only the files the analyzer should inspect
// (test files are excluded by the runner); type information covers the
// whole package, so expressions in Files always resolve.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Report records one finding. The runner applies //avlint:allow
	// suppression after the analyzer returns.
	Report func(Diagnostic)
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf returns the object denoted by id, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Info.ObjectOf(id) }

// Diagnostic is one finding, positioned in the pass's FileSet.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a resolved diagnostic: a diagnostic tied to its analyzer
// with the position materialized, ready to print and sort.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Message, f.Analyzer)
}

// Unit is one package's analyzable form, as produced by a loader.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File // every parsed file, test files included
	Pkg   *types.Package
	Info  *types.Info
}

// Run applies each analyzer to the unit and returns the surviving
// findings: test-file findings are dropped (test code may panic and
// leak freely), //avlint:allow-suppressed findings are dropped, and
// the rest come back sorted by position. Analyzer errors are returned
// as findings against the package itself rather than aborting the
// whole run, so one confused analyzer cannot hide the others' output.
func Run(unit *Unit, analyzers []*Analyzer) []Finding {
	var nonTest []*ast.File
	for _, f := range unit.Files {
		if name := unit.Fset.Position(f.Package).Filename; !strings.HasSuffix(name, "_test.go") {
			nonTest = append(nonTest, f)
		}
	}
	allows := collectAllows(unit.Fset, nonTest)

	var findings []Finding
	for _, a := range analyzers {
		var diags []Diagnostic
		pass := &Pass{
			Analyzer: a,
			Fset:     unit.Fset,
			Files:    nonTest,
			Pkg:      unit.Pkg,
			Info:     unit.Info,
			Report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			findings = append(findings, Finding{
				Analyzer: a.Name,
				Position: token.Position{Filename: unit.Pkg.Path()},
				Message:  "analyzer failed: " + err.Error(),
			})
			continue
		}
		for _, d := range diags {
			pos := unit.Fset.Position(d.Pos)
			if allows.suppressed(a.Name, pos) {
				continue
			}
			findings = append(findings, Finding{Analyzer: a.Name, Position: pos, Message: d.Message})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings
}

// allowSet maps file → line → analyzer names allowed there.
type allowSet map[string]map[int]map[string]bool

const allowPrefix = "avlint:allow"

// collectAllows indexes every //avlint:allow comment by file and line.
func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	set := allowSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				// The first whitespace-delimited field is the
				// comma-separated analyzer list; the rest is the
				// free-text reason.
				spec := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				fields := strings.Fields(spec)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					set[pos.Filename] = lines
				}
				byName := lines[pos.Line]
				if byName == nil {
					byName = map[string]bool{}
					lines[pos.Line] = byName
				}
				for _, n := range strings.Split(fields[0], ",") {
					if n = strings.TrimSpace(n); n != "" {
						byName[n] = true
					}
				}
			}
		}
	}
	return set
}

// suppressed reports whether an allow for name (or "all") covers the
// position: same line, or the line directly above.
func (s allowSet) suppressed(name string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if byName := lines[line]; byName != nil && (byName[name] || byName["all"]) {
			return true
		}
	}
	return false
}
