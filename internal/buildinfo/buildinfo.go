// Package buildinfo reports what binary is actually running — module
// version, VCS revision, and Go toolchain — from the build metadata
// the linker already embeds (debug.ReadBuildInfo). Every cmd/ binary
// exposes it behind -version, and the serving processes export it as
// the autovalidate_build_info gauge so a scrape can tell which
// revision each cluster member runs.
package buildinfo

import (
	"runtime"
	"runtime/debug"
)

// Info is the build identity of the running binary.
type Info struct {
	// Version is the module version ("(devel)" for local builds).
	Version string
	// Revision is the VCS commit hash, "" when built outside a checkout.
	Revision string
	// Modified reports uncommitted changes at build time.
	Modified bool
	// GoVersion is the toolchain that built the binary.
	GoVersion string
}

// Get reads the embedded build metadata. It never fails: binaries
// built without module info (e.g. plain `go test` harnesses) get
// "(devel)" and an empty revision.
func Get() Info {
	info := Info{Version: "(devel)", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// ShortRevision is the 12-character revision prefix, or "unknown".
func (i Info) ShortRevision() string {
	if i.Revision == "" {
		return "unknown"
	}
	if len(i.Revision) > 12 {
		return i.Revision[:12]
	}
	return i.Revision
}

// String renders the one-line -version output.
func (i Info) String() string {
	s := i.Version + " (" + i.ShortRevision()
	if i.Modified {
		s += "+dirty"
	}
	return s + ", " + i.GoVersion + ")"
}
