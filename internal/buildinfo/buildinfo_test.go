package buildinfo

import (
	"strings"
	"testing"
)

func TestGet(t *testing.T) {
	info := Get()
	if info.Version == "" || info.GoVersion == "" {
		t.Fatalf("incomplete info: %+v", info)
	}
	if !strings.HasPrefix(info.GoVersion, "go") {
		t.Fatalf("odd toolchain %q", info.GoVersion)
	}
	s := info.String()
	if !strings.Contains(s, info.Version) || !strings.Contains(s, info.GoVersion) {
		t.Fatalf("String() dropped fields: %q", s)
	}
}

func TestShortRevision(t *testing.T) {
	if got := (Info{}).ShortRevision(); got != "unknown" {
		t.Fatalf("empty revision: %q", got)
	}
	long := Info{Revision: "0123456789abcdef0123"}
	if got := long.ShortRevision(); got != "0123456789ab" {
		t.Fatalf("long revision: %q", got)
	}
	short := Info{Revision: "abc"}
	if got := short.ShortRevision(); got != "abc" {
		t.Fatalf("short revision: %q", got)
	}
}
