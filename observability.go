package autovalidate

import (
	"io"
	"log/slog"
	"net/http"

	"autovalidate/internal/buildinfo"
	"autovalidate/internal/journal"
	"autovalidate/internal/obs"
)

// Observability surface: structured JSON logging, lightweight
// distributed tracing with W3C traceparent propagation, and the debug
// endpoints that expose both. A Tracer handed to ServiceConfig and
// GatewayConfig records one span per hop (gateway proxy → member
// handler → monitor check / write proxy / replication apply) into a
// bounded in-process ring served at GET /debug/traces; the logger
// carries trace_id/span_id on every request-scoped line so logs and
// traces correlate.
type (
	// Tracer samples requests and retains finished spans in a bounded
	// ring. The zero config samples every root and keeps 512 spans.
	Tracer = obs.Tracer
	// TracerConfig sizes the span ring and sets the 1-in-N root
	// sampling rate (negative = never sample).
	TracerConfig = obs.TracerConfig
	// TraceSpan is one recorded span, as served by /debug/traces.
	TraceSpan = obs.SpanRecord
	// BuildInfo identifies the running binary (version, VCS revision,
	// Go toolchain).
	BuildInfo = buildinfo.Info
	// Journal is the drift-forensics audit log: an append-only,
	// segmented, CRC-framed event journal recording monitor decisions
	// (with per-value failure attribution), re-inferences, ingests,
	// replication installs, and registry mutations. Hand one to
	// ServiceConfig.Journal to enable GET /events and startup
	// rehydration of the monitor's escalation state.
	Journal = journal.Journal
	// JournalOptions configures segment rotation and retention.
	JournalOptions = journal.Options
	// JournalEvent is one audit record, as served by GET /events.
	JournalEvent = journal.Event
	// JournalFilter selects events out of a journal (cursor, stream,
	// kind, trace, time).
	JournalFilter = journal.Filter
)

// OpenJournal opens (or creates) an audit journal directory, truncating
// any torn tail left by a crash mid-append.
func OpenJournal(dir string, opt JournalOptions) (*Journal, error) { return journal.Open(dir, opt) }

// NewTracer returns a tracer; a nil *Tracer is valid everywhere and
// disables tracing with zero allocation on the request path.
func NewTracer(cfg TracerConfig) *Tracer { return obs.NewTracer(cfg) }

// NewLogger returns a JSON slog.Logger writing to w, stamping every
// line with the component name. Pass it to ServiceConfig.Logger,
// GatewayConfig.Logger, or ClusterFollowerConfig.Logger.
func NewLogger(w io.Writer, component string) *slog.Logger { return obs.NewLogger(w, component) }

// NewDebugMux returns the opt-in debug handler: net/http/pprof under
// /debug/pprof/ and the tracer's span ring at /debug/traces. Serve it
// on a loopback-only listener — it is not meant for public exposure.
func NewDebugMux(t *Tracer) *http.ServeMux { return obs.DebugMux(t) }

// GetBuildInfo reports the running binary's build identity, read from
// the embedded module and VCS metadata.
func GetBuildInfo() BuildInfo { return buildinfo.Get() }
