// Command avgen synthesizes a data lake (the stand-in for the paper's
// Enterprise and Government corpora) as a directory of CSV files.
//
// Usage:
//
//	avgen -profile enterprise -tables 200 -seed 1 -out ./lake
package main

import (
	"autovalidate/internal/buildinfo"
	"flag"
	"fmt"
	"os"

	"autovalidate/internal/datagen"
)

func main() {
	profile := flag.String("profile", "enterprise", "lake profile: enterprise|government")
	tables := flag.Int("tables", 150, "number of data files to generate")
	seed := flag.Int64("seed", 1, "generation seed")
	out := flag.String("out", "lake", "output directory")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("avgen", buildinfo.Get())
		return
	}

	var p datagen.Profile
	switch *profile {
	case "enterprise":
		p = datagen.Enterprise(*tables, *seed)
	case "government":
		p = datagen.Government(*tables, *seed)
	default:
		fmt.Fprintf(os.Stderr, "avgen: unknown profile %q\n", *profile)
		os.Exit(2)
	}
	c := datagen.Generate(p)
	if err := c.SaveDir(*out); err != nil {
		fmt.Fprintln(os.Stderr, "avgen:", err)
		os.Exit(1)
	}
	stats := c.ComputeStats()
	fmt.Printf("wrote %d files (%d columns, %d values) to %s\n",
		stats.NumFiles, stats.NumCols, stats.TotalValues, *out)
}
