// Command avtail follows an Auto-Validate audit journal live: it polls
// a server's GET /events (or a gateway's GET /cluster/events with
// -cluster) and prints each new event as it lands — the terminal
// counterpart to grepping the journal directory after the fact.
//
// Usage:
//
//	avtail -url http://server:8077                     # follow one member's journal
//	avtail -url http://gateway:8070 -cluster           # merged cluster timeline
//	avtail -url ... -stream orders -kind decision      # only one stream's decisions
//	avtail -url ... -json | jq .                       # NDJSON for machines
//	avtail -url ... -once                              # print what's there and exit
//
// Single-member mode pages with the journal's event-ID cursor
// (?after=), so nothing is missed between polls. Cluster mode has no
// composite cursor — member journals number independently — so avtail
// tracks the highest event ID seen per member and prints only novel
// events; a member restart that rewinds IDs is detected and the
// member's cursor reset.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"autovalidate"
)

func main() {
	baseURL := flag.String("url", "http://localhost:8077", "server (or, with -cluster, gateway) base URL")
	cluster := flag.Bool("cluster", false, "follow the gateway's merged /cluster/events instead of one member's /events")
	stream := flag.String("stream", "", "only events for this stream")
	kind := flag.String("kind", "", "only events of this kind (decision, reinfer, ingest, delta_apply, snapshot_install, registry_put, registry_delete)")
	trace := flag.String("trace", "", "only events with this trace ID")
	jsonOut := flag.Bool("json", false, "print events as NDJSON instead of the human form")
	interval := flag.Duration("interval", 2*time.Second, "poll interval")
	once := flag.Bool("once", false, "print the current journal contents and exit instead of following")
	limit := flag.Int("limit", 0, "events per poll (0 = server default)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println("avtail", autovalidate.GetBuildInfo())
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	f := follower{
		client:  &http.Client{Timeout: 15 * time.Second},
		base:    strings.TrimRight(*baseURL, "/"),
		cluster: *cluster,
		stream:  *stream,
		kind:    *kind,
		trace:   *trace,
		jsonOut: *jsonOut,
		limit:   *limit,
		seen:    make(map[string]uint64),
	}
	for {
		if err := f.poll(ctx); err != nil {
			if ctx.Err() != nil {
				return
			}
			fmt.Fprintln(os.Stderr, "avtail:", err)
			if *once {
				os.Exit(1)
			}
		}
		if *once {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(*interval):
		}
	}
}

// tailEvent is the event shape both endpoints serve; Member is set
// only by /cluster/events.
type tailEvent struct {
	ID      uint64          `json:"id"`
	Time    time.Time       `json:"time"`
	Kind    string          `json:"kind"`
	Stream  string          `json:"stream,omitempty"`
	TraceID string          `json:"trace_id,omitempty"`
	Action  string          `json:"action,omitempty"`
	Detail  json.RawMessage `json:"detail,omitempty"`
	Member  string          `json:"member,omitempty"`
}

type tailPage struct {
	Events       []tailEvent `json:"events"`
	NextAfter    uint64      `json:"next_after"`
	MemberErrors []string    `json:"member_errors,omitempty"`
}

type follower struct {
	client  *http.Client
	base    string
	cluster bool
	stream  string
	kind    string
	trace   string
	jsonOut bool
	limit   int

	// after is the single-member cursor; seen the per-member high-water
	// marks for cluster mode ("" keys single-member mode's warnings).
	after uint64
	seen  map[string]uint64
}

func (f *follower) poll(ctx context.Context) error {
	q := make([]string, 0, 5)
	add := func(k, v string) {
		if v != "" {
			q = append(q, k+"="+v)
		}
	}
	add("stream", f.stream)
	add("kind", f.kind)
	add("trace", f.trace)
	if f.limit > 0 {
		add("limit", fmt.Sprint(f.limit))
	}
	path := "/events"
	if f.cluster {
		path = "/cluster/events"
	} else if f.after > 0 {
		add("after", fmt.Sprint(f.after))
	}
	u := f.base + path
	if len(q) > 0 {
		u += "?" + strings.Join(q, "&")
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("%s: %s", u, resp.Status)
	}
	var page tailPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return fmt.Errorf("decoding %s: %w", u, err)
	}
	for _, warn := range page.MemberErrors {
		fmt.Fprintln(os.Stderr, "avtail: member unavailable:", warn)
	}
	for _, e := range page.Events {
		if f.novel(e) {
			f.print(e)
		}
	}
	if !f.cluster && page.NextAfter > f.after {
		f.after = page.NextAfter
	}
	return nil
}

// novel dedupes cluster polls: member journals number independently,
// so the high-water mark is tracked per member. An ID below the mark
// after a member restarted with a fresh journal resets that member's
// cursor so its new events still show.
func (f *follower) novel(e tailEvent) bool {
	if !f.cluster {
		return true // the ?after= cursor already filtered
	}
	high, ok := f.seen[e.Member]
	if ok && e.ID <= high {
		if e.ID < high/2 && e.ID <= 1 {
			f.seen[e.Member] = e.ID // journal rewound: start over
			return true
		}
		return false
	}
	f.seen[e.Member] = e.ID
	return true
}

func (f *follower) print(e tailEvent) {
	if f.jsonOut {
		b, err := json.Marshal(e)
		if err != nil {
			fmt.Fprintln(os.Stderr, "avtail:", err)
			return
		}
		fmt.Println(string(b))
		return
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  #%d  %-16s", e.Time.Format(time.RFC3339), e.ID, e.Kind)
	if e.Stream != "" {
		fmt.Fprintf(&sb, "  stream=%s", e.Stream)
	}
	if e.Action != "" {
		fmt.Fprintf(&sb, "  action=%s", e.Action)
	}
	if e.TraceID != "" {
		fmt.Fprintf(&sb, "  trace=%s", e.TraceID)
	}
	if e.Member != "" {
		fmt.Fprintf(&sb, "  member=%s", e.Member)
	}
	if summary := detailSummary(e); summary != "" {
		fmt.Fprintf(&sb, "  %s", summary)
	}
	fmt.Println(sb.String())
}

// detailSummary condenses a decision's forensics to one line: counts
// plus the top failure class, e.g. "50/50 missed: charset@tok1(-) ×48".
func detailSummary(e tailEvent) string {
	if e.Kind != "decision" || len(e.Detail) == 0 {
		return ""
	}
	var dec struct {
		Verdict struct {
			Total         int `json:"total"`
			NonConforming int `json:"non_conforming"`
			Attribution   *struct {
				Classes []struct {
					Kind     string `json:"kind"`
					Token    int    `json:"token"`
					TokenStr string `json:"token_str"`
					Count    int    `json:"count"`
				} `json:"classes"`
			} `json:"attribution"`
		} `json:"verdict"`
		ConsecutiveAlarms int `json:"consecutive_alarms"`
	}
	if err := json.Unmarshal(e.Detail, &dec); err != nil {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d/%d missed", dec.Verdict.NonConforming, dec.Verdict.Total)
	if dec.ConsecutiveAlarms > 1 {
		fmt.Fprintf(&sb, " (run of %d)", dec.ConsecutiveAlarms)
	}
	if a := dec.Verdict.Attribution; a != nil && len(a.Classes) > 0 {
		c := a.Classes[0]
		fmt.Fprintf(&sb, ": %s@tok%d(%s) ×%d", c.Kind, c.Token, c.TokenStr, c.Count)
	}
	return sb.String()
}
