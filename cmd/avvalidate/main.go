// Command avvalidate learns validation rules from a training table and
// validates a future batch of the same table against them — the
// recurring-pipeline workflow of the paper's introduction.
//
// Usage:
//
//	avvalidate -index lake.idx -train monday.csv -test tuesday.csv
//
// The exit status is the scripting contract: 0 when every validated
// column passed, 1 when any column was flagged non-conforming (drift
// alarm), 2 on usage errors, 3 on operational failures (unreadable
// index or tables, or a column whose validation errored). A pipeline
// can therefore gate a load on `avvalidate ... || abort`.
package main

import (
	"autovalidate/internal/buildinfo"
	"flag"
	"fmt"
	"os"

	"autovalidate"
)

func main() {
	idxPath := flag.String("index", "lake.idx", "offline index file")
	trainPath := flag.String("train", "", "training CSV (today's feed)")
	testPath := flag.String("test", "", "CSV to validate (tomorrow's feed)")
	r := flag.Float64("r", 0.1, "FPR target r")
	m := flag.Int("m", 100, "coverage target m")
	theta := flag.Float64("theta", 0.1, "non-conforming tolerance θ")
	alpha := flag.Float64("alpha", 0.01, "drift-test significance level")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: avvalidate -index lake.idx -train monday.csv -test tuesday.csv [flags]\n\n"+
				"exit status: 0 all validated columns passed; 1 any column ALARMED;\n"+
				"             2 usage error; 3 operational failure\n\nflags:\n")
		flag.PrintDefaults()
	}
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("avvalidate", buildinfo.Get())
		return
	}

	if *trainPath == "" || *testPath == "" {
		fmt.Fprintln(os.Stderr, "avvalidate: -train and -test are required")
		flag.Usage()
		os.Exit(2)
	}
	idx, err := autovalidate.LoadIndex(*idxPath)
	if err != nil {
		fatal(err)
	}
	trainTbl, err := autovalidate.LoadTable(*trainPath)
	if err != nil {
		fatal(err)
	}
	testTbl, err := autovalidate.LoadTable(*testPath)
	if err != nil {
		fatal(err)
	}

	opt := autovalidate.DefaultOptions()
	opt.R, opt.M, opt.Theta, opt.Alpha = *r, *m, *theta, *alpha
	opt.Tau = idx.Enum.MaxTokens
	rules, errs := autovalidate.InferTable(trainTbl, idx, opt)
	fmt.Printf("learned %d rules (%d columns without a feasible pattern)\n", len(rules.Rules), len(errs))

	cols := map[string][]string{}
	for _, col := range testTbl.Columns {
		cols[col.Name] = col.Values
	}
	alarms, failures := 0, 0
	for _, cr := range rules.ValidateColumns(cols) {
		if cr.Err != nil {
			fmt.Printf("  %-24s error: %v\n", cr.Column, cr.Err)
			failures++
			continue
		}
		fmt.Printf("  %-24s %s\n", cr.Column, cr.Report)
		if cr.Report.Alarm {
			alarms++
		}
	}
	switch {
	case alarms > 0:
		fmt.Printf("%d column(s) ALARMED\n", alarms)
		os.Exit(1)
	case failures > 0:
		fmt.Printf("%d column(s) failed to validate\n", failures)
		os.Exit(3)
	}
	fmt.Println("all validated columns passed")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "avvalidate:", err)
	os.Exit(3)
}
