// Command avgateway fronts a replicated Auto-Validate cluster: given a
// static member list (the leader and its read replicas, each an avserve
// process), it routes stream endpoints (/streams/{name}...) by
// consistent hash so one replica accumulates each stream's monitor
// history, round-robins stateless traffic (/infer, /validate, ...)
// across healthy members, health-checks every member's /readyz, and
// fails a request over to the next replica when a member refuses the
// connection or dies mid-response.
//
// Usage:
//
//	avgateway -members http://n1:8077,http://n2:8077,http://n3:8077 -addr :8070
//
// Own endpoints (never proxied):
//
//	GET /gateway/members   member list with health flags
//	GET /gateway/healthz   gateway liveness
//
// The gateway holds no validation state — restart it freely; stream
// affinity is a pure function of (stream name, member list), so every
// gateway instance over the same members routes identically.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"autovalidate"
)

func main() {
	members := flag.String("members", "", "comma-separated member base URLs (required), e.g. http://n1:8077,http://n2:8077")
	addr := flag.String("addr", ":8070", "listen address (port 0 picks a free port)")
	check := flag.Duration("check", time.Second, "member /readyz health-check interval")
	maxBody := flag.Int64("max-body", 64<<20, "request-body cap in bytes (bodies are buffered for retry)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and /debug/traces on this loopback address (empty = off)")
	traceSample := flag.Int("trace-sample", 1, "record 1 in N root traces (0 disables tracing)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println("avgateway", autovalidate.GetBuildInfo())
		return
	}

	logger := autovalidate.NewLogger(os.Stderr, "avgateway")
	sample := *traceSample
	if sample <= 0 {
		sample = -1
	}
	tracer := autovalidate.NewTracer(autovalidate.TracerConfig{SampleEvery: sample})

	if *members == "" {
		fatal(fmt.Errorf("-members is required"))
	}
	var urls []*url.URL
	for _, s := range strings.Split(*members, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		u, err := url.Parse(s)
		if err != nil || u.Scheme == "" || u.Host == "" {
			fatal(fmt.Errorf("bad member URL %q (want e.g. http://host:8077): %w", s, err))
		}
		urls = append(urls, u)
	}

	g, err := autovalidate.NewGateway(autovalidate.GatewayConfig{
		Members:       urls,
		CheckInterval: *check,
		MaxBody:       *maxBody,
		Logger:        logger,
		Tracer:        tracer,
	})
	if err != nil {
		fatal(err)
	}

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(err)
		}
		// Distinct phrasing: the e2e harness treats the first
		// "listening on" stdout line as the serving address.
		fmt.Printf("avgateway: debug server on %s\n", dln.Addr())
		go func() {
			if err := http.Serve(dln, autovalidate.NewDebugMux(tracer)); err != nil {
				logger.Error("debug server failed", "error", err.Error())
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// The serving-address handshake stays on stdout — tests and scripts
	// parse this exact line to learn the bound port.
	fmt.Printf("avgateway: routing %d member(s), listening on %s\n", len(urls), ln.Addr())
	for _, u := range urls {
		logger.Info("member configured", "member", u.String())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go g.Run(ctx)

	server := &http.Server{Handler: g.Handler()}
	done := make(chan error, 1)
	go func() { done <- server.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := server.Shutdown(shutdownCtx); err != nil {
			fatal(err)
		}
		logger.Info("shut down")
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "avgateway:", err)
	os.Exit(1)
}
