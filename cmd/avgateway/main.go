// Command avgateway fronts a replicated Auto-Validate cluster: given a
// static member list (the leader and its read replicas, each an avserve
// process), it routes stream endpoints (/streams/{name}...) by
// consistent hash so one replica accumulates each stream's monitor
// history, round-robins stateless traffic (/infer, /validate, ...)
// across healthy members, health-checks every member's /readyz, and
// fails a request over to the next replica when a member refuses the
// connection or dies mid-response.
//
// Usage:
//
//	avgateway -members http://n1:8077,http://n2:8077,http://n3:8077 -addr :8070
//
// Own endpoints (never proxied):
//
//	GET /gateway/members   member list with health flags
//	GET /gateway/healthz   gateway liveness
//
// The gateway holds no validation state — restart it freely; stream
// affinity is a pure function of (stream name, member list), so every
// gateway instance over the same members routes identically.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"autovalidate"
)

func main() {
	members := flag.String("members", "", "comma-separated member base URLs (required), e.g. http://n1:8077,http://n2:8077")
	addr := flag.String("addr", ":8070", "listen address (port 0 picks a free port)")
	check := flag.Duration("check", time.Second, "member /readyz health-check interval")
	maxBody := flag.Int64("max-body", 64<<20, "request-body cap in bytes (bodies are buffered for retry)")
	flag.Parse()

	if *members == "" {
		fatal(fmt.Errorf("-members is required"))
	}
	var urls []*url.URL
	for _, s := range strings.Split(*members, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		u, err := url.Parse(s)
		if err != nil || u.Scheme == "" || u.Host == "" {
			fatal(fmt.Errorf("bad member URL %q (want e.g. http://host:8077): %w", s, err))
		}
		urls = append(urls, u)
	}

	g, err := autovalidate.NewGateway(autovalidate.GatewayConfig{
		Members:       urls,
		CheckInterval: *check,
		MaxBody:       *maxBody,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("avgateway: routing %d member(s), listening on %s\n", len(urls), ln.Addr())
	for _, u := range urls {
		fmt.Printf("avgateway: member %s\n", u)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go g.Run(ctx)

	server := &http.Server{Handler: g.Handler()}
	done := make(chan error, 1)
	go func() { done <- server.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := server.Shutdown(shutdownCtx); err != nil {
			fatal(err)
		}
		fmt.Println("avgateway: shut down")
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "avgateway:", err)
	os.Exit(1)
}
