// Command avserve runs the long-running Auto-Validate service: it loads
// a persisted offline index once and serves rule inference and batch
// validation over HTTP, caching inferred rules so recurring pipelines
// skip FMDV after their first run.
//
// Usage:
//
//	avserve -index lake.idx -addr :8077 [-registry rules.avr]
//	avserve -index lake.idx -leader [-retain 64]            # replication leader
//	avserve -follow http://leader:8077 [-poll 2s]           # read replica
//
// Endpoints:
//
//	POST   /infer                  {"values": [...]}                 → rule + fingerprint
//	POST   /validate               {"fingerprint": "...", "values": [...]} → drift report
//	POST   /ingest                 {"tables": [...]}                 → fold new tables into the index
//	PUT    /streams/{name}         {"train": [...]}                  → register/re-register a stream rule
//	GET    /streams                                                  → list registered streams
//	GET    /streams/{name}[?version=N]                               → stream rule (any version)
//	DELETE /streams/{name}                                           → remove a stream
//	POST   /streams/{name}/check   {"values": [...]}                 → monitor decision (accept/alarm/quarantine/reinfer)
//	GET    /streams/{name}/history                                   → rolling batch verdicts + pass-rate EWMA
//	GET    /streams/{name}/explain                                   → latest alarm's failure attribution (needs -journal)
//	GET    /events                 cursor-paginated audit journal (needs -journal; filters: stream, kind, trace, since, id, after, limit)
//	GET    /healthz                index summary (liveness)
//	GET    /readyz                 200 once servable, 503 while a follower awaits its first snapshot
//	GET    /stats                  cache and traffic counters (JSON)
//	GET    /metrics                Prometheus text format (counters, gauges, latency histograms)
//
// With -leader, three replication endpoints are added and every ingest's
// delta is retained (bounded by -retain) as a replication log:
//
//	GET /replication/snapshot      framed index + stream registry artifact
//	GET /replication/deltas?from=G retained delta chain from generation G (410 → re-snapshot)
//	GET /replication/registry      framed registry alone (stream-rule changes)
//
// With -follow, avserve runs as a read replica: it starts unready,
// bootstraps index and registry from the leader's snapshot, then polls
// for deltas every -poll, applying them through the same copy-on-write
// swap as /ingest so in-flight requests never observe a half-applied
// index. Mutating endpoints are proxied to the leader; the follower's
// state converges on the next poll (eventual consistency, bounded by
// the poll interval).
//
// /ingest swaps the index copy-on-write, so concurrent /infer and
// /validate requests never observe a half-merged index, and marks
// registered stream rules stale (their FPR evidence predates the new
// generation) so the monitor escalates them to re-inference on their
// next drifting batch; pass -readonly to disable all mutating
// endpoints. The in-memory index grows but is not persisted — run
// avindex -append for durable growth. The stream registry, by
// contrast, is durable when -registry is set: it is loaded at startup
// and re-persisted after every stream mutation.
//
// With -journal DIR, every monitor escalation (and each state
// transition back to accept), ingest, replication install, and stream
// registration/deletion is appended to a segmented, checksummed audit
// journal in DIR and served back through GET /events — each decision
// carrying per-value failure attribution (which pattern token the
// misses died at, with redacted samples). At startup the monitor's
// per-stream escalation state is rehydrated from the journal tail, so
// a restart does not reset consecutive-alarm ladders; follow the live
// feed with avtail.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"syscall"
	"time"

	"autovalidate"
)

func main() {
	idxPath := flag.String("index", "lake.idx", "offline index file (built by avindex)")
	addr := flag.String("addr", ":8077", "listen address (port 0 picks a free port)")
	cacheSize := flag.Int("cache", 1024, "rule-cache capacity (entries)")
	r := flag.Float64("r", 0.1, "default FPR target r")
	m := flag.Int("m", 100, "default coverage target m")
	theta := flag.Float64("theta", 0.1, "default non-conforming tolerance θ")
	alpha := flag.Float64("alpha", 0.01, "default drift-test significance level")
	strategy := flag.String("strategy", "FMDV-VH", "default FMDV variant (FMDV, FMDV-V, FMDV-H, FMDV-VH)")
	shards := flag.Int("shards", 0, "reshard the loaded index (0 keeps the persisted shard count)")
	readonly := flag.Bool("readonly", false, "disable the mutating endpoints (/ingest, stream registration)")
	regPath := flag.String("registry", "", "stream-rule registry file (loaded at startup, persisted on mutation; empty = in-memory only)")
	journalDir := flag.String("journal", "", "audit-journal directory for drift forensics (/events, restart rehydration; empty = off)")
	journalSegBytes := flag.Int64("journal-segment-bytes", 0, "journal segment rotation threshold (0 = 4 MiB)")
	journalSegments := flag.Int("journal-segments", 0, "journal segments retained, oldest deleted past this (0 = 8)")
	leader := flag.Bool("leader", false, "serve the /replication endpoints and retain ingest deltas for followers")
	retain := flag.Int("retain", 64, "delta-chain retention for -leader (followers further behind re-snapshot)")
	follow := flag.String("follow", "", "leader base URL; run as a read replica (bootstraps from its snapshot, polls deltas, proxies writes)")
	poll := flag.Duration("poll", 2*time.Second, "delta-poll interval for -follow (bounds follower staleness)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and /debug/traces on this loopback address (empty = off)")
	traceSample := flag.Int("trace-sample", 1, "record 1 in N root traces (0 disables tracing; propagated sampled traces are always recorded)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println("avserve", autovalidate.GetBuildInfo())
		return
	}

	logger := autovalidate.NewLogger(os.Stderr, "avserve")
	sample := *traceSample
	if sample <= 0 {
		sample = -1
	}
	tracer := autovalidate.NewTracer(autovalidate.TracerConfig{SampleEvery: sample})

	switch {
	case *leader && *follow != "":
		fatal(errors.New("-leader and -follow are mutually exclusive"))
	case *follow != "" && *regPath != "":
		fatal(errors.New("-registry cannot be combined with -follow: a follower's registry is replicated from the leader"))
	case *follow != "" && *readonly:
		fatal(errors.New("-readonly is implied by -follow (writes are proxied to the leader)"))
	}

	opt := autovalidate.DefaultOptions()
	opt.R, opt.M, opt.Theta, opt.Alpha = *r, *m, *theta, *alpha
	switch *strategy {
	case "FMDV":
		opt.Strategy = autovalidate.FMDV
	case "FMDV-V":
		opt.Strategy = autovalidate.FMDVV
	case "FMDV-H":
		opt.Strategy = autovalidate.FMDVH
	case "FMDV-VH":
		opt.Strategy = autovalidate.FMDVVH
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}

	cfg := autovalidate.ServiceConfig{
		CacheSize: *cacheSize,
		ReadOnly:  *readonly,
		Logger:    logger,
		Tracer:    tracer,
	}
	if *journalDir != "" {
		jrn, err := autovalidate.OpenJournal(*journalDir, autovalidate.JournalOptions{
			MaxSegmentBytes: *journalSegBytes,
			MaxSegments:     *journalSegments,
		})
		if err != nil {
			fatal(err)
		}
		defer jrn.Close()
		cfg.Journal = jrn
		logger.Info("journal open", "dir", *journalDir, "last_event_id", jrn.LastID())
	}

	var follower *autovalidate.ClusterFollower
	var leaderURL *url.URL
	if *follow != "" {
		// Follower: no local index; serve an empty placeholder behind a
		// 503 /readyz until the first snapshot installs. The tuning
		// flags (-r, -m, -theta, ...) apply exactly as on the leader —
		// run every node with the same ones — while τ is re-derived
		// from the replicated index at each snapshot install.
		var err error
		leaderURL, err = url.Parse(*follow)
		if err != nil || leaderURL.Scheme == "" || leaderURL.Host == "" {
			fatal(fmt.Errorf("bad -follow URL %q (want e.g. http://leader:8077): %w", *follow, err))
		}
		cfg.Index = autovalidate.NewEmptyIndex(autovalidate.DefaultIndexShards())
		cfg.Options = &opt
		cfg.StartUnready = true
		cfg.WriteProxy = leaderURL
		// No DeltaLog: avserve followers never serve /replication, so a
		// retained chain here would be write-only memory.
		logger.Info("following leader", "leader", leaderURL.String(), "poll", poll.String())
	} else {
		start := time.Now()
		idx, err := autovalidate.LoadIndex(*idxPath)
		if err != nil {
			fatal(err)
		}
		if *shards > 0 {
			idx.Reshard(*shards)
		}
		logger.Info("index loaded", "index", idx.String(), "took", time.Since(start).Round(time.Millisecond).String())
		opt.Tau = idx.Enum.MaxTokens
		cfg.Index = idx
		cfg.Options = &opt

		if *regPath != "" {
			reg, err := autovalidate.LoadStreamRegistry(*regPath)
			switch {
			case err == nil:
				logger.Info("registry loaded", "streams", reg.Len(), "path", *regPath)
			case errors.Is(err, fs.ErrNotExist):
				reg = autovalidate.NewStreamRegistry()
				logger.Info("starting fresh registry", "path", *regPath)
			default:
				fatal(err)
			}
			cfg.Registry = reg
			cfg.RegistryPath = *regPath
		}
		if *leader {
			cfg.DeltaLog = autovalidate.NewIndexDeltaLog(*retain)
		}
	}

	svc, err := autovalidate.NewService(cfg)
	if err != nil {
		fatal(err)
	}

	handler := svc.Handler()
	if *leader {
		l, err := autovalidate.NewClusterLeader(svc)
		if err != nil {
			fatal(err)
		}
		handler = l.Handler()
		logger.Info("replication leader", "retain", *retain)
	}
	if *follow != "" {
		follower, err = autovalidate.NewClusterFollower(autovalidate.ClusterFollowerConfig{
			Leader:       leaderURL,
			Service:      svc,
			PollInterval: *poll,
			Logger:       logger,
		})
		if err != nil {
			fatal(err)
		}
	}

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(err)
		}
		// Distinct phrasing: the e2e harness treats the first
		// "listening on" stdout line as the serving address.
		fmt.Printf("avserve: debug server on %s\n", dln.Addr())
		go func() {
			if err := http.Serve(dln, autovalidate.NewDebugMux(tracer)); err != nil {
				logger.Error("debug server failed", "error", err.Error())
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// The serving-address handshake stays on stdout — tests and scripts
	// parse this exact line to learn the bound port.
	fmt.Printf("avserve: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if follower != nil {
		go follower.Run(ctx)
	}

	server := &http.Server{Handler: handler}
	done := make(chan error, 1)
	go func() { done <- server.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := server.Shutdown(shutdownCtx); err != nil {
			fatal(err)
		}
		logger.Info("shut down")
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "avserve:", err)
	os.Exit(1)
}
