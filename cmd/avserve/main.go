// Command avserve runs the long-running Auto-Validate service: it loads
// a persisted offline index once and serves rule inference and batch
// validation over HTTP, caching inferred rules so recurring pipelines
// skip FMDV after their first run.
//
// Usage:
//
//	avserve -index lake.idx -addr :8077 [-registry rules.avr]
//
// Endpoints:
//
//	POST   /infer                  {"values": [...]}                 → rule + fingerprint
//	POST   /validate               {"fingerprint": "...", "values": [...]} → drift report
//	POST   /ingest                 {"tables": [...]}                 → fold new tables into the index
//	PUT    /streams/{name}         {"train": [...]}                  → register/re-register a stream rule
//	GET    /streams                                                  → list registered streams
//	GET    /streams/{name}[?version=N]                               → stream rule (any version)
//	DELETE /streams/{name}                                           → remove a stream
//	POST   /streams/{name}/check   {"values": [...]}                 → monitor decision (accept/alarm/quarantine/reinfer)
//	GET    /streams/{name}/history                                   → rolling batch verdicts + pass-rate EWMA
//	GET    /healthz                index summary
//	GET    /stats                  cache and traffic counters (JSON)
//	GET    /metrics                Prometheus text format
//
// /ingest swaps the index copy-on-write, so concurrent /infer and
// /validate requests never observe a half-merged index, and marks
// registered stream rules stale (their FPR evidence predates the new
// generation) so the monitor escalates them to re-inference on their
// next drifting batch; pass -readonly to disable all mutating
// endpoints. The in-memory index grows but is not persisted — run
// avindex -append for durable growth. The stream registry, by
// contrast, is durable when -registry is set: it is loaded at startup
// and re-persisted after every stream mutation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"autovalidate"
)

func main() {
	idxPath := flag.String("index", "lake.idx", "offline index file (built by avindex)")
	addr := flag.String("addr", ":8077", "listen address (port 0 picks a free port)")
	cacheSize := flag.Int("cache", 1024, "rule-cache capacity (entries)")
	r := flag.Float64("r", 0.1, "default FPR target r")
	m := flag.Int("m", 100, "default coverage target m")
	theta := flag.Float64("theta", 0.1, "default non-conforming tolerance θ")
	alpha := flag.Float64("alpha", 0.01, "default drift-test significance level")
	strategy := flag.String("strategy", "FMDV-VH", "default FMDV variant (FMDV, FMDV-V, FMDV-H, FMDV-VH)")
	shards := flag.Int("shards", 0, "reshard the loaded index (0 keeps the persisted shard count)")
	readonly := flag.Bool("readonly", false, "disable the mutating endpoints (/ingest, stream registration)")
	regPath := flag.String("registry", "", "stream-rule registry file (loaded at startup, persisted on mutation; empty = in-memory only)")
	flag.Parse()

	start := time.Now()
	idx, err := autovalidate.LoadIndex(*idxPath)
	if err != nil {
		fatal(err)
	}
	if *shards > 0 {
		idx.Reshard(*shards)
	}
	fmt.Printf("avserve: loaded %s in %s\n", idx, time.Since(start).Round(time.Millisecond))

	opt := autovalidate.DefaultOptions()
	opt.R, opt.M, opt.Theta, opt.Alpha = *r, *m, *theta, *alpha
	opt.Tau = idx.Enum.MaxTokens
	switch *strategy {
	case "FMDV":
		opt.Strategy = autovalidate.FMDV
	case "FMDV-V":
		opt.Strategy = autovalidate.FMDVV
	case "FMDV-H":
		opt.Strategy = autovalidate.FMDVH
	case "FMDV-VH":
		opt.Strategy = autovalidate.FMDVVH
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}

	var reg *autovalidate.StreamRegistry
	if *regPath != "" {
		reg, err = autovalidate.LoadStreamRegistry(*regPath)
		switch {
		case err == nil:
			fmt.Printf("avserve: loaded %d stream(s) from %s\n", reg.Len(), *regPath)
		case errors.Is(err, fs.ErrNotExist):
			reg = autovalidate.NewStreamRegistry()
			fmt.Printf("avserve: starting fresh registry at %s\n", *regPath)
		default:
			fatal(err)
		}
	}

	svc, err := autovalidate.NewService(autovalidate.ServiceConfig{
		Index:        idx,
		Options:      &opt,
		CacheSize:    *cacheSize,
		ReadOnly:     *readonly,
		Registry:     reg,
		RegistryPath: *regPath,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("avserve: listening on %s\n", ln.Addr())

	server := &http.Server{Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- server.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := server.Shutdown(shutdownCtx); err != nil {
			fatal(err)
		}
		fmt.Println("avserve: shut down")
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "avserve:", err)
	os.Exit(1)
}
