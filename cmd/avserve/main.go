// Command avserve runs the long-running Auto-Validate service: it loads
// a persisted offline index once and serves rule inference and batch
// validation over HTTP, caching inferred rules so recurring pipelines
// skip FMDV after their first run.
//
// Usage:
//
//	avserve -index lake.idx -addr :8077
//
// Endpoints:
//
//	POST /infer     {"values": [...]}                 → rule + fingerprint
//	POST /validate  {"fingerprint": "...", "values": [...]} → drift report
//	POST /ingest    {"tables": [...]}                 → fold new tables into the index
//	GET  /healthz   index summary
//	GET  /stats     cache and traffic counters
//
// /ingest swaps the index copy-on-write, so concurrent /infer and
// /validate requests never observe a half-merged index; pass -readonly to
// disable it. The in-memory index grows but is not persisted — run
// avindex -append for durable growth.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"autovalidate"
)

func main() {
	idxPath := flag.String("index", "lake.idx", "offline index file (built by avindex)")
	addr := flag.String("addr", ":8077", "listen address (port 0 picks a free port)")
	cacheSize := flag.Int("cache", 1024, "rule-cache capacity (entries)")
	r := flag.Float64("r", 0.1, "default FPR target r")
	m := flag.Int("m", 100, "default coverage target m")
	theta := flag.Float64("theta", 0.1, "default non-conforming tolerance θ")
	alpha := flag.Float64("alpha", 0.01, "default drift-test significance level")
	strategy := flag.String("strategy", "FMDV-VH", "default FMDV variant (FMDV, FMDV-V, FMDV-H, FMDV-VH)")
	shards := flag.Int("shards", 0, "reshard the loaded index (0 keeps the persisted shard count)")
	readonly := flag.Bool("readonly", false, "disable the mutating /ingest endpoint")
	flag.Parse()

	start := time.Now()
	idx, err := autovalidate.LoadIndex(*idxPath)
	if err != nil {
		fatal(err)
	}
	if *shards > 0 {
		idx.Reshard(*shards)
	}
	fmt.Printf("avserve: loaded %s in %s\n", idx, time.Since(start).Round(time.Millisecond))

	opt := autovalidate.DefaultOptions()
	opt.R, opt.M, opt.Theta, opt.Alpha = *r, *m, *theta, *alpha
	opt.Tau = idx.Enum.MaxTokens
	switch *strategy {
	case "FMDV":
		opt.Strategy = autovalidate.FMDV
	case "FMDV-V":
		opt.Strategy = autovalidate.FMDVV
	case "FMDV-H":
		opt.Strategy = autovalidate.FMDVH
	case "FMDV-VH":
		opt.Strategy = autovalidate.FMDVVH
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}

	svc, err := autovalidate.NewService(autovalidate.ServiceConfig{
		Index:     idx,
		Options:   &opt,
		CacheSize: *cacheSize,
		ReadOnly:  *readonly,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("avserve: listening on %s\n", ln.Addr())

	server := &http.Server{Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- server.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := server.Shutdown(shutdownCtx); err != nil {
			fatal(err)
		}
		fmt.Println("avserve: shut down")
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "avserve:", err)
	os.Exit(1)
}
