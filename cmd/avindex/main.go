// Command avindex builds and incrementally maintains the offline
// Auto-Validate index (§2.4) over a directory-of-CSV/TSV lake.
//
// Usage:
//
//	avindex -corpus ./lake -out lake.idx -tau 8      # full build
//	avindex -append ./new-tables -out lake.idx       # incremental ingest
//	avindex -append ./new -out lake.idx -delta d1.avd  # ...also persist the delta
//	avindex -apply d1.avd,d2.avd -out lake.idx       # compact saved deltas
//
// -append loads the existing -out index, delta-builds just the new
// tables, folds them in, and rewrites the index — orders of magnitude
// cheaper than re-scanning the whole lake. -apply replays deltas written
// by -delta onto a base index (they must apply in generation order).
package main

import (
	"autovalidate/internal/buildinfo"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"autovalidate"
)

func main() {
	corpusDir := flag.String("corpus", "lake", "directory of CSV/TSV files for a full build")
	appendDir := flag.String("append", "", "directory of new tables to ingest into the existing -out index")
	deltaOut := flag.String("delta", "", "with -append: also write the ingest delta to this file")
	applyList := flag.String("apply", "", "comma-separated delta files to compact onto the existing -out index")
	out := flag.String("out", "lake.idx", "index file (output; for -append/-apply also the input)")
	tau := flag.Int("tau", 8, "token-count cap τ for indexed patterns (full build only)")
	workers := flag.Int("workers", 0, "parallelism (0 = GOMAXPROCS)")
	verbose := flag.Bool("v", false, "print progress")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("avindex", buildinfo.Get())
		return
	}

	opt := autovalidate.DefaultBuildOptions()
	opt.Enum.MaxTokens = *tau
	opt.Workers = *workers
	if *verbose {
		opt.Progress = func(done, total int) {
			if done%500 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\rindexed %d/%d columns", done, total)
			}
		}
	}

	if *appendDir != "" && *applyList != "" {
		fmt.Fprintln(os.Stderr, "avindex: -append and -apply are mutually exclusive")
		os.Exit(2)
	}
	if *deltaOut != "" && *appendDir == "" {
		fmt.Fprintln(os.Stderr, "avindex: -delta requires -append")
		os.Exit(2)
	}

	start := time.Now()
	switch {
	case *appendDir != "":
		appendRun(*appendDir, *out, *deltaOut, opt, start)
	case *applyList != "":
		applyRun(strings.Split(*applyList, ","), *out, start)
	default:
		buildRun(*corpusDir, *out, opt, *verbose, start)
	}
}

// buildRun is the original one-pass full build.
func buildRun(corpusDir, out string, opt autovalidate.BuildOptions, verbose bool, start time.Time) {
	c, err := autovalidate.LoadCorpusDir(corpusDir)
	if err != nil {
		fatal(err)
	}
	idx := autovalidate.BuildIndex(c, opt)
	if verbose {
		fmt.Fprintln(os.Stderr)
	}
	if err := idx.Save(out); err != nil {
		fatal(err)
	}
	fmt.Printf("%s in %s -> %s\n", idx, time.Since(start).Round(time.Millisecond), out)
}

// appendRun ingests a directory of new tables into an existing index.
func appendRun(dir, out, deltaOut string, opt autovalidate.BuildOptions, start time.Time) {
	idx, err := autovalidate.LoadIndex(out)
	if err != nil {
		fatal(err)
	}
	c, err := autovalidate.LoadCorpusDir(dir)
	if err != nil {
		fatal(err)
	}
	cols := c.Columns()
	delta, err := idx.IngestColumns(cols, opt)
	if err != nil {
		fatal(err)
	}
	if deltaOut != "" {
		if err := autovalidate.SaveIndexDelta(deltaOut, delta); err != nil {
			fatal(err)
		}
	}
	if err := idx.Save(out); err != nil {
		fatal(err)
	}
	fmt.Printf("ingested %d columns from %s: %s in %s -> %s\n",
		len(cols), dir, idx, time.Since(start).Round(time.Millisecond), out)
}

// applyRun compacts saved deltas onto an existing base index, in order.
func applyRun(deltaPaths []string, out string, start time.Time) {
	idx, err := autovalidate.LoadIndex(out)
	if err != nil {
		fatal(err)
	}
	deltas := make([]*autovalidate.IndexDelta, 0, len(deltaPaths))
	for _, p := range deltaPaths {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		d, err := autovalidate.LoadIndexDelta(p)
		if err != nil {
			fatal(err)
		}
		deltas = append(deltas, d)
	}
	if err := autovalidate.CompactIndex(idx, deltas...); err != nil {
		fatal(err)
	}
	if err := idx.Save(out); err != nil {
		fatal(err)
	}
	fmt.Printf("compacted %d delta(s): %s in %s -> %s\n",
		len(deltas), idx, time.Since(start).Round(time.Millisecond), out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "avindex:", err)
	os.Exit(1)
}
