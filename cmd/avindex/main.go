// Command avindex builds the offline Auto-Validate index (§2.4) from a
// directory of CSV/TSV files.
//
// Usage:
//
//	avindex -corpus ./lake -out lake.idx -tau 8
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"autovalidate"
)

func main() {
	corpusDir := flag.String("corpus", "lake", "directory of CSV/TSV files")
	out := flag.String("out", "lake.idx", "output index file")
	tau := flag.Int("tau", 8, "token-count cap τ for indexed patterns")
	workers := flag.Int("workers", 0, "parallelism (0 = GOMAXPROCS)")
	verbose := flag.Bool("v", false, "print progress")
	flag.Parse()

	c, err := autovalidate.LoadCorpusDir(*corpusDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avindex:", err)
		os.Exit(1)
	}
	opt := autovalidate.DefaultBuildOptions()
	opt.Enum.MaxTokens = *tau
	opt.Workers = *workers
	if *verbose {
		opt.Progress = func(done, total int) {
			if done%500 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\rindexed %d/%d columns", done, total)
			}
		}
	}
	start := time.Now()
	idx := autovalidate.BuildIndex(c, opt)
	if *verbose {
		fmt.Fprintln(os.Stderr)
	}
	if err := idx.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, "avindex:", err)
		os.Exit(1)
	}
	fmt.Printf("%s in %s -> %s\n", idx, time.Since(start).Round(time.Millisecond), *out)
}
