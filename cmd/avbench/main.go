// Command avbench regenerates the paper's tables and figures.
//
// With -json, each experiment also writes a machine-readable
// BENCH_<exp>.json record (throughput, latency quantiles, catch-up lag)
// under -outdir, for CI artifact archiving and trend tracking.
package main

import (
	"autovalidate/internal/buildinfo"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"autovalidate/internal/evalbench"
)

func main() {
	exp := flag.String("exp", "fig10a", "experiment id: table1|table2|table3|fig10a|fig10b|fig11|fig12a|fig12b|fig12c|fig12d|fig13|fig14|fig15|ingest|monitor|cluster|batch|ablations|all")
	scale := flag.String("scale", "default", "default|quick")
	jsonOut := flag.Bool("json", false, "write a BENCH_<exp>.json record per experiment")
	outdir := flag.String("outdir", ".", "directory for -json records")
	baseline := flag.String("baseline", "", "committed BENCH record to gate against: exit 1 if values_per_sec regresses below 70% of it")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("avbench", buildinfo.Get())
		return
	}

	cfg := evalbench.DefaultConfig()
	if *scale == "quick" {
		cfg = evalbench.QuickConfig()
	}
	start := time.Now()
	env := evalbench.NewEnv(cfg)
	fmt.Fprintf(os.Stderr, "env ready in %s (TE=%d cols idx=%d pats, TG=%d cols idx=%d pats)\n",
		time.Since(start).Round(time.Millisecond),
		env.TE.NumColumns(), env.IdxE.Size(), env.TG.NumColumns(), env.IdxG.Size())

	run := func(id string) {
		t0 := time.Now()
		rec := evalbench.BenchRecord{Experiment: id, Scale: *scale}
		switch id {
		case "table1":
			fmt.Println("=== Table 1: corpus characteristics ===")
			fmt.Print(evalbench.FormatTable1(env.Table1()))
		case "table2":
			fmt.Println("=== Table 2: programmatic vs ground truth (BE) ===")
			fmt.Print(evalbench.FormatTable2(env.Table2()))
		case "table3":
			fmt.Println("=== Table 3: user study ===")
			fmt.Print(evalbench.FormatTable3(env.Table3UserStudy(20)))
		case "fig10a":
			fmt.Println("=== Figure 10(a): Enterprise benchmark P/R ===")
			fmt.Print(evalbench.FormatFigure10(env.Figure10("BE")))
		case "fig10b":
			fmt.Println("=== Figure 10(b): Government benchmark P/R ===")
			fmt.Print(evalbench.FormatFigure10(env.Figure10("BG")))
		case "fig11":
			fmt.Println("=== Figure 11: case-by-case F1 (100 cases) ===")
			fmt.Print(evalbench.FormatFigure11(env.Figure11(100)))
		case "fig12a":
			fmt.Println("=== Figure 12(a): sensitivity to r ===")
			fmt.Print(evalbench.FormatSensitivity("r", env.Figure12a(nil)))
		case "fig12b":
			fmt.Println("=== Figure 12(b): sensitivity to m ===")
			fmt.Print(evalbench.FormatSensitivity("m", env.Figure12b(nil)))
		case "fig12c":
			fmt.Println("=== Figure 12(c): sensitivity to tau ===")
			fmt.Print(evalbench.FormatSensitivity("tau", env.Figure12c(nil)))
		case "fig12d":
			fmt.Println("=== Figure 12(d): sensitivity to theta ===")
			fmt.Print(evalbench.FormatSensitivity("theta", env.Figure12d(nil)))
		case "fig13":
			fmt.Println("=== Figure 13: index pattern distributions ===")
			fmt.Print(evalbench.FormatFigure13(env.Figure13Analysis()))
		case "fig14":
			fmt.Println("=== Figure 14: per-column latency ===")
			rows := env.Figure14Latency(30, 200)
			fmt.Print(evalbench.FormatFigure14(rows))
			for _, r := range rows {
				rec.AddMetric("avg_ms_"+metricKey(r.Method), r.AvgMillis)
			}
		case "fig15":
			fmt.Println("=== Figure 15: Kaggle schema-drift case study ===")
			rows, err := env.Figure15Kaggle()
			if err != nil {
				fmt.Fprintln(os.Stderr, "fig15:", err)
				os.Exit(1)
			}
			fmt.Print(evalbench.FormatFigure15(rows))
		case "ingest":
			fmt.Println("=== Incremental ingest vs full rebuild (TE + 1 table) ===")
			cmp := env.IngestComparison()
			fmt.Print(evalbench.FormatIngestComparison(cmp))
			rec.AddMetric("rebuild_millis", cmp.RebuildMillis)
			rec.AddMetric("ingest_millis", cmp.IngestMillis)
			rec.AddMetric("speedup", cmp.Speedup)
		case "monitor":
			fmt.Println("=== Continuous validation: day-by-day replay with injected drift ===")
			res := env.MonitorExperiment(evalbench.DefaultMonitorParams())
			fmt.Print(evalbench.FormatMonitor(res))
			rec.AddMetric("streams", float64(res.Streams))
			rec.AddMetric("detected", float64(res.Detected))
			rec.AddMetric("mean_detect_latency_batches", res.MeanLatency)
			rec.AddMetric("max_detect_latency_batches", float64(res.MaxLatency))
			rec.AddMetric("false_alarm_rate", res.FalseAlarmRate)
			if tp, err := env.ThroughputProbe(40, 250); err == nil {
				rec.ValuesPerSec = tp.ValuesPerSec
				rec.P50Millis = tp.P50Millis
				rec.P99Millis = tp.P99Millis
			} else {
				fmt.Fprintln(os.Stderr, "throughput probe:", err)
			}
		case "cluster":
			fmt.Println("=== Replicated cluster: gateway validate QPS (1 vs 3 replicas) and follower catch-up lag ===")
			measure := 2 * time.Second
			if *scale == "quick" {
				measure = 300 * time.Millisecond
			}
			res, err := env.ClusterExperiment(measure)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cluster:", err)
				os.Exit(1)
			}
			fmt.Print(evalbench.FormatCluster(res))
			rec.CatchUpMillis = res.CatchUpMillis
			rec.AddMetric("validate_qps_1x", res.Replicas1QPS)
			rec.AddMetric("validate_qps_3x", res.Replicas3QPS)
			rec.AddMetric("replica_speedup", res.Speedup)
		case "batch":
			fmt.Println("=== Batch validation: compiled programs vs the per-value path ===")
			values, rounds := 20000, 50
			if *scale == "quick" {
				values, rounds = 5000, 20
			}
			res, err := env.BatchExperiment(values, rounds)
			if err != nil {
				fmt.Fprintln(os.Stderr, "batch:", err)
				os.Exit(1)
			}
			fmt.Print(evalbench.FormatBatch(res))
			rec.ValuesPerSec = res.BatchPerSec
			rec.AddMetric("per_value_values_per_sec", res.PerValuePerSec)
			rec.AddMetric("batch_values_per_sec", res.BatchPerSec)
			rec.AddMetric("speedup", res.Speedup)
			rec.AddMetric("adversarial_millis", res.AdversarialMillis)
		case "ablations":
			fmt.Println("=== Ablations ===")
			fmt.Print(evalbench.FormatAblation("FMDV vs CMDV objective", env.AblationCMDV()))
			fmt.Print(evalbench.FormatAblation("sum vs max segment aggregation", env.AblationMaxAggregation()))
			fmt.Print(evalbench.FormatAblation("Fisher vs chi-squared drift test", env.AblationDriftTest()))
			fmt.Print(evalbench.FormatAblation("index support threshold", env.AblationIndexSupport()))
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(2)
		}
		rec.ElapsedSeconds = time.Since(t0).Seconds()
		fmt.Fprintf(os.Stderr, "[%s done in %s]\n\n", id, time.Since(t0).Round(time.Millisecond))
		if *jsonOut {
			path, err := rec.Write(*outdir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench record:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
		if *baseline != "" && rec.ValuesPerSec > 0 {
			base, err := evalbench.ReadBenchRecord(*baseline)
			if err != nil {
				fmt.Fprintln(os.Stderr, "baseline:", err)
				os.Exit(1)
			}
			if base.ValuesPerSec > 0 {
				floor := 0.7 * base.ValuesPerSec
				if rec.ValuesPerSec < floor {
					fmt.Fprintf(os.Stderr, "REGRESSION: %s values/sec %.0f is below 70%% of baseline %.0f (floor %.0f)\n",
						id, rec.ValuesPerSec, base.ValuesPerSec, floor)
					os.Exit(1)
				}
				fmt.Fprintf(os.Stderr, "baseline gate ok: %.0f values/sec vs floor %.0f\n", rec.ValuesPerSec, floor)
			}
		}
	}

	if *exp == "all" {
		for _, id := range []string{"table1", "fig10a", "fig10b", "table2", "fig11",
			"fig12a", "fig12b", "fig12c", "fig12d", "fig13", "fig14", "table3", "fig15", "ingest", "monitor", "cluster", "batch", "ablations"} {
			run(id)
		}
		return
	}
	run(*exp)
}

// metricKey lowercases a display label into a metric-name-safe key.
func metricKey(label string) string {
	var sb strings.Builder
	for _, r := range strings.ToLower(label) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			sb.WriteRune(r)
		default:
			if l := sb.Len(); l > 0 && sb.String()[l-1] != '_' {
				sb.WriteByte('_')
			}
		}
	}
	return strings.Trim(sb.String(), "_")
}
