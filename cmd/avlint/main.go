// Command avlint runs the project's custom static-analysis suite: six
// analyzers that enforce the correctness invariants the validation
// cluster's design rests on (copy-on-write swap discipline, error-not-
// panic decode paths, %w error chains, checked write-path closes,
// bounded request bodies, and structured serving-path logging). See
// internal/lint/checkers for the suite
// and README.md "Static analysis" for the invariant each one guards.
//
// Two modes share the same analyzers:
//
//	avlint ./...                     # standalone, any package pattern
//	go vet -vettool=$(pwd)/avlint ./...  # as a vet tool
//
// The vet-tool mode speaks cmd/go's unitchecker protocol: -flags
// enumerates supported flags as JSON, -V=full prints a version
// fingerprint, and a trailing *.cfg argument carries one package's
// file list and export-data map. Findings print as
// file:line:col: message (analyzer); the exit status is non-zero when
// findings exist, which is what makes avlint a CI gate.
package main

import (
	"autovalidate/internal/buildinfo"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"autovalidate/internal/lint/analysis"
	"autovalidate/internal/lint/checkers"
	"autovalidate/internal/lint/load"
)

func main() {
	versionFlag := flag.String("V", "", "print version information (-V=full) and exit")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON and exit (vet-tool protocol)")
	onlyFlag := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = usage
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("avlint", buildinfo.Get())
		return
	}

	switch {
	case *versionFlag != "":
		printVersion()
		return
	case *flagsFlag:
		// The vet-tool protocol: cmd/go asks which flags the tool
		// supports before deciding what to pass. avlint keeps its
		// per-run configuration out of vet's way, so the answer is
		// empty.
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	os.Exit(standalone(args, *onlyFlag))
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: avlint [-only name,...] [package pattern ...]\n\nanalyzers:\n")
	for _, a := range checkers.All() {
		fmt.Fprintf(os.Stderr, "  %-15s %s\n", a.Name, a.Doc)
	}
}

// selected resolves the -only flag against the suite.
func selected(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return checkers.All(), nil
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := checkers.ByName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("avlint: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// standalone loads patterns via the go command and analyzes them.
func standalone(patterns []string, only string) int {
	analyzers, err := selected(only)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	units, err := load.Packages("", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	found := false
	for _, unit := range units {
		for _, f := range analysis.Run(unit, analyzers) {
			found = true
			fmt.Fprintln(os.Stderr, f)
		}
	}
	if found {
		return 1
	}
	return 0
}

// vetConfig mirrors the JSON written by cmd/go for each vetted package
// (see $GOROOT/src/cmd/go/internal/work/exec.go, vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package from a vet.cfg, following the
// unitchecker exit conventions: 0 clean, 2 findings or failure.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "avlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// cmd/go reads the vetx (analysis facts) file back and feeds it to
	// later runs. avlint's analyzers are fact-free, so an empty file
	// both satisfies the protocol and caches as a no-op.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintln(os.Stderr, "avlint:", err)
			}
		}
	}
	if cfg.VetxOnly {
		// Dependency-only run: cmd/go wants facts, and there are none.
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	imp := load.ExportImporter(fset, func(path string) (string, bool) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		return file, ok
	})
	unit, err := load.Check(fset, cfg.ImportPath, cfg.GoFiles, imp, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintln(os.Stderr, "avlint:", err)
		return 2
	}
	findings := analysis.Run(unit, checkers.All())
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	writeVetx()
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// printVersion emits the version fingerprint cmd/go hashes for build
// caching; the content hash of the binary itself is the only honest
// version an always-rebuilt tool has.
func printVersion() {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			// Read-only hash of our own binary; nothing to flush.
			_ = f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%02x\n", name, h.Sum(nil))
}
