// Command avmonitor drives continuous validation from the command line:
// it registers validation rules for every column of a training corpus
// into a persistent registry, then replays directories of batch tables
// (one directory per pipeline run — a "day") against those rules,
// printing the monitor's accept / alarm / quarantine / re-infer
// decision for every stream and batch.
//
// Usage:
//
//	avmonitor -index lake.idx -registry rules.avr register <train-dir>
//	avmonitor -index lake.idx -registry rules.avr replay <batch-dir> [<batch-dir> ...]
//
// Streams are named "table.csv:column". register infers one rule per
// column (columns with no feasible pattern are skipped with a note) and
// saves the registry; re-running register bumps versions of existing
// streams. replay checks each batch directory in argument order; a
// batch whose decision escalates to re-inference re-learns the rule
// from that batch and persists the bumped version, mirroring the
// service's POST /streams/{name}/check.
//
// Exit status: 0 when every replayed batch was accepted, 1 when any
// batch raised an alarm or was quarantined or re-inferred, 2 on usage
// errors, 3 on operational failures (unreadable index, corpus, or
// registry).
//
// Escalation state (the consecutive-alarm ladder behind
// -quarantine-after and -reinfer-after) lives in process memory: each
// avmonitor invocation starts every stream's ladder fresh, so a stream
// alarming across separate replay runs never escalates past what one
// run saw — by design for a CLI whose exit code summarizes one run.
// For escalation that must survive restarts, run avserve with
// -journal: the service rehydrates each stream's ladder from the audit
// journal at startup.
package main

import (
	"autovalidate/internal/buildinfo"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"

	"autovalidate"
	"autovalidate/internal/corpus"
	"autovalidate/internal/monitor"
	"autovalidate/internal/registry"
)

func main() {
	idxPath := flag.String("index", "lake.idx", "offline index file (built by avindex)")
	regPath := flag.String("registry", "rules.avr", "stream-rule registry file")
	r := flag.Float64("r", 0.1, "FPR target r")
	m := flag.Int("m", 100, "coverage target m")
	theta := flag.Float64("theta", 0.1, "non-conforming tolerance θ")
	alpha := flag.Float64("alpha", 0.01, "drift-test significance level")
	quarantineAfter := flag.Int("quarantine-after", 3, "consecutive alarming batches before quarantine")
	reinferAfter := flag.Int("reinfer-after", 6, "consecutive alarming batches before re-inference")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: avmonitor [flags] register <train-dir>\n"+
				"       avmonitor [flags] replay <batch-dir> [<batch-dir> ...]\n\n"+
				"exit status: 0 all batches accepted; 1 any alarm/quarantine/re-infer;\n"+
				"             2 usage error; 3 operational failure\n\nflags:\n")
		flag.PrintDefaults()
	}
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("avmonitor", buildinfo.Get())
		return
	}

	args := flag.Args()
	if len(args) < 2 {
		flag.Usage()
		os.Exit(2)
	}
	cmd, dirs := args[0], args[1:]

	idx, err := autovalidate.LoadIndex(*idxPath)
	if err != nil {
		fatal(err)
	}
	opt := autovalidate.DefaultOptions()
	opt.R, opt.M, opt.Theta, opt.Alpha = *r, *m, *theta, *alpha
	opt.Tau = idx.Enum.MaxTokens

	switch cmd {
	case "register":
		if len(dirs) != 1 {
			fmt.Fprintln(os.Stderr, "avmonitor: register takes exactly one training directory")
			os.Exit(2)
		}
		if err := register(idx, *regPath, dirs[0], opt); err != nil {
			fatal(err)
		}
	case "replay":
		pol := monitor.DefaultPolicy()
		pol.Alpha = *alpha
		pol.QuarantineAfter = *quarantineAfter
		pol.ReinferAfter = *reinferAfter
		disrupted, err := replay(idx, *regPath, dirs, pol)
		if err != nil {
			fatal(err)
		}
		if disrupted {
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "avmonitor: unknown command %q (want register or replay)\n", cmd)
		os.Exit(2)
	}
}

// streamName derives the stream identifier for one column. Stream names
// must be single path segments for the service's /streams/{name} routes,
// so the separator is ":" rather than "/".
func streamName(c *corpus.Column) string { return c.Table + ":" + c.Name }

// loadOrNewRegistry opens an existing registry file, or starts empty
// when the file does not exist yet.
func loadOrNewRegistry(path string) (*registry.Registry, error) {
	reg, err := registry.Load(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return registry.New(), nil
		}
		return nil, err
	}
	return reg, nil
}

func register(idx *autovalidate.Index, regPath, dir string, opt autovalidate.Options) error {
	c, err := autovalidate.LoadCorpusDir(dir)
	if err != nil {
		return err
	}
	reg, err := loadOrNewRegistry(regPath)
	if err != nil {
		return err
	}
	registered, skipped := 0, 0
	for _, col := range c.Columns() {
		rule, err := autovalidate.Infer(col.Values, idx, opt)
		if err != nil {
			fmt.Printf("  %-32s no rule (%v)\n", streamName(col), err)
			skipped++
			continue
		}
		dom, _ := autovalidate.ProposeDomain(col.Values)
		s, err := reg.PutDomain(streamName(col), rule, opt, idx.Generation, dom)
		if err != nil {
			return err
		}
		suffix := ""
		if dom.Name != "" {
			suffix = fmt.Sprintf(" [domain %s %.2f]", dom.Name, dom.Confidence)
		}
		fmt.Printf("  %-32s v%d %s (est FPR %.4f)%s\n", s.Name, s.Version, rule.Pattern, rule.EstimatedFPR, suffix)
		registered++
	}
	if err := reg.Save(regPath); err != nil {
		return err
	}
	fmt.Printf("registered %d stream(s) (%d without a feasible pattern) -> %s\n", registered, skipped, regPath)
	return nil
}

func replay(idx *autovalidate.Index, regPath string, dirs []string, pol monitor.Policy) (disrupted bool, err error) {
	reg, err := registry.Load(regPath)
	if err != nil {
		return false, err
	}
	eng := monitor.NewEngine(pol)
	reinferred := 0
	for day, dir := range dirs {
		batch, err := autovalidate.LoadCorpusDir(dir)
		if err != nil {
			return disrupted, err
		}
		reinferredToday := 0
		fmt.Printf("== batch %d: %s ==\n", day+1, dir)
		for _, col := range batch.Columns() {
			name := streamName(col)
			stream, ok := reg.Get(name)
			if !ok {
				continue // not a registered stream
			}
			dec, err := eng.Check(stream, col.Values)
			if err != nil {
				return disrupted, err
			}
			v := dec.Verdict
			domNote := ""
			if v.Domain != "" {
				domNote = fmt.Sprintf(", %s-invalid=%d", v.Domain, v.DomainInvalid)
			}
			fmt.Printf("  %-32s %-10s %d/%d non-conforming (drift p=%.3g, ewma=%.3f%s)\n",
				name, v.ActionName, v.NonConforming, v.Total, v.DriftP, dec.PassEWMA, domNote)
			if v.Action != monitor.Accept {
				disrupted = true
			}
			if v.Action == monitor.Reinfer {
				// The drifted batch is the new normal: re-learn and
				// bump the version, as the service's check endpoint does.
				rule, err := autovalidate.Infer(col.Values, idx, stream.Options)
				if err != nil {
					fmt.Printf("  %-32s re-inference failed: %v\n", name, err)
					continue
				}
				dom, _ := autovalidate.ProposeDomain(col.Values)
				next, err := reg.PutDomain(name, rule, stream.Options, idx.Generation, dom)
				if err != nil {
					return disrupted, err
				}
				eng.Reset(name)
				reinferredToday++
				fmt.Printf("  %-32s re-inferred -> v%d %s\n", name, next.Version, rule.Pattern)
			}
		}
		// Persist after every batch that re-inferred, so a failure on a
		// later directory cannot lose rule versions already bumped.
		if reinferredToday > 0 {
			if err := reg.Save(regPath); err != nil {
				return disrupted, err
			}
			reinferred += reinferredToday
		}
	}
	if reinferred > 0 {
		fmt.Printf("persisted %d re-inferred rule(s) -> %s\n", reinferred, regPath)
	}
	if !disrupted {
		fmt.Println("all batches accepted")
	}
	return disrupted, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "avmonitor:", err)
	os.Exit(3)
}
