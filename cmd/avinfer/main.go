// Command avinfer infers a data-domain validation pattern for one column
// against a prebuilt index.
//
// The column comes either from a text file with one value per line
// (-values) or from a named column of a CSV file (-csv/-col).
//
// Usage:
//
//	avinfer -index lake.idx -csv feed.csv -col order_ts -strategy vh
package main

import (
	"autovalidate/internal/buildinfo"
	"bufio"
	"flag"
	"fmt"
	"os"

	"autovalidate"
)

func main() {
	idxPath := flag.String("index", "lake.idx", "offline index file")
	valuesPath := flag.String("values", "", "text file with one value per line")
	csvPath := flag.String("csv", "", "CSV file containing the column")
	colName := flag.String("col", "", "column name within -csv")
	strategy := flag.String("strategy", "vh", "fmdv|v|h|vh")
	r := flag.Float64("r", 0.1, "FPR target r")
	m := flag.Int("m", 100, "coverage target m")
	theta := flag.Float64("theta", 0.1, "non-conforming tolerance θ")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("avinfer", buildinfo.Get())
		return
	}

	idx, err := autovalidate.LoadIndex(*idxPath)
	if err != nil {
		fatal(err)
	}
	values, err := loadValues(*valuesPath, *csvPath, *colName)
	if err != nil {
		fatal(err)
	}

	opt := autovalidate.DefaultOptions()
	opt.R, opt.M, opt.Theta = *r, *m, *theta
	opt.Tau = idx.Enum.MaxTokens
	switch *strategy {
	case "fmdv":
		opt.Strategy = autovalidate.FMDV
	case "v":
		opt.Strategy = autovalidate.FMDVV
	case "h":
		opt.Strategy = autovalidate.FMDVH
	case "vh":
		opt.Strategy = autovalidate.FMDVVH
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}

	rule, err := autovalidate.Infer(values, idx, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("strategy:       %s\n", rule.Strategy)
	fmt.Printf("pattern:        %s\n", rule.Pattern)
	fmt.Printf("estimated FPR:  %.6f\n", rule.EstimatedFPR)
	fmt.Printf("train θ:        %.4f (%d/%d non-conforming)\n",
		rule.TrainTheta(), rule.TrainNonConforming, rule.TrainTotal)
	if len(rule.Segments) > 1 {
		fmt.Println("segments:")
		for i, s := range rule.Segments {
			fmt.Printf("  %2d: %s\n", i, s)
		}
	}
	if dom, ok := autovalidate.ProposeDomain(values); ok {
		if len(dom.Vocab) > 0 {
			fmt.Printf("domain:         %s (confidence %.2f, %d words)\n",
				dom.Name, dom.Confidence, len(dom.Vocab))
		} else {
			fmt.Printf("domain:         %s (confidence %.2f)\n", dom.Name, dom.Confidence)
		}
	}
}

func loadValues(valuesPath, csvPath, colName string) ([]string, error) {
	switch {
	case valuesPath != "":
		f, err := os.Open(valuesPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		var out []string
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			out = append(out, sc.Text())
		}
		return out, sc.Err()
	case csvPath != "":
		t, err := autovalidate.LoadTable(csvPath)
		if err != nil {
			return nil, err
		}
		for _, col := range t.Columns {
			if col.Name == colName {
				return col.Values, nil
			}
		}
		return nil, fmt.Errorf("column %q not found in %s", colName, csvPath)
	default:
		return nil, fmt.Errorf("provide -values or -csv/-col")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "avinfer:", err)
	os.Exit(1)
}
