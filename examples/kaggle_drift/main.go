// Kaggle drift: a condensed version of the paper's Figure 15 case study.
// For three ML tasks, train a gradient-boosted-trees model, simulate
// schema drift by swapping the two categorical attributes in the test
// split, measure the quality drop, and show that Auto-Validate flags the
// drift before the model ever sees it — except when the two attributes
// share a syntactic pattern, the case the paper reports as undetectable.
package main

import (
	"fmt"
	"log"

	"autovalidate"
	"autovalidate/internal/datagen"
	"autovalidate/internal/ml"
)

func main() {
	lake := datagen.Generate(datagen.Enterprise(120, 5))
	idx := autovalidate.BuildIndex(lake, autovalidate.DefaultBuildOptions())
	opt := autovalidate.DefaultOptions()
	opt.M = 20

	for _, task := range datagen.KaggleTasks() {
		switch task.Name {
		case "Titanic", "SFCrime", "WestNile":
		default:
			continue
		}
		train, test, err := task.Generate(1200, 600, 99)
		if err != nil {
			log.Fatal(err)
		}
		mlTask, metric, metricName := ml.Regression, ml.R2, "R²"
		if task.Kind == datagen.Classification {
			mlTask, metric, metricName = ml.Classification, ml.AveragePrecision, "avg-precision"
		}
		encA, encATest := datagen.EncodeCategorical(train.CatA, test.CatA)
		encB, encBTest := datagen.EncodeCategorical(train.CatB, test.CatB)
		model := ml.Train(datagen.FeatureMatrix(encA, encB, train.Numeric), train.Labels, ml.DefaultConfig(mlTask))
		base := metric(model.PredictAll(datagen.FeatureMatrix(encATest, encBTest, test.Numeric)), test.Labels)

		drifted := *test
		drifted.SwapCategoricals()
		_, dA := datagen.EncodeCategorical(train.CatA, drifted.CatA)
		_, dB := datagen.EncodeCategorical(train.CatB, drifted.CatB)
		after := metric(model.PredictAll(datagen.FeatureMatrix(dA, dB, drifted.Numeric)), drifted.Labels)

		detected := false
		for _, cat := range [][2][]string{{train.CatA, drifted.CatA}, {train.CatB, drifted.CatB}} {
			if rule, err := autovalidate.Infer(cat[0], idx, opt); err == nil && rule.Flags(cat[1]) {
				detected = true
			}
		}
		fmt.Printf("%-10s %s: no-drift %.3f -> drifted %.3f (%.0f%%), validation detected drift: %v\n",
			task.Name, metricName, base, after, 100*after/base, detected)
	}
	fmt.Println("\nWestNile pairs two same-pattern enum attributes, so single-column")
	fmt.Println("pattern validation cannot see the swap — one of the 3/11 undetectable")
	fmt.Println("tasks in the paper's study.")
}
