// Auto-tag: the dual use of domain patterns shipped as the Auto-Tag
// feature of Azure Purview (paper §2.3 and abstract). From a handful of
// example values of a sensitive domain, infer the most restrictive
// pattern describing it, then scan the lake and tag every column of the
// same domain.
package main

import (
	"fmt"
	"log"

	"autovalidate"
	"autovalidate/internal/datagen"
)

func main() {
	lake := datagen.Generate(datagen.Enterprise(100, 3))
	idx := autovalidate.BuildIndex(lake, autovalidate.DefaultBuildOptions())

	// A data steward provides a few examples of the "machine host"
	// asset identifier they want to govern.
	examples, err := datagen.FreshColumn("machine_host", 40, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("examples:", examples[:4])

	opt := autovalidate.DefaultOptions()
	opt.M = 15
	tag, err := autovalidate.InferTagPattern(examples, idx, opt, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tag pattern: %s\n\n", tag.Pattern)

	matches := autovalidate.TagColumns(lake, tag.Pattern, 0.9)
	fmt.Printf("tagged %d columns:\n", len(matches))
	correct := 0
	for i, m := range matches {
		if i < 8 {
			fmt.Printf("  %-40s match=%.2f domain=%s\n", m.Column.ID(), m.MatchFraction, m.Column.Domain)
		}
		if m.Column.Domain == "machine_host" || m.Column.Domain == "dirty:machine_host" {
			correct++
		}
	}
	fmt.Printf("...%d/%d tagged columns are true machine_host columns\n", correct, len(matches))
}
