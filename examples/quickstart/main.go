// Quickstart: build an index over a small synthetic lake, infer a
// validation rule for a date column, and validate a clean batch and a
// drifted batch.
package main

import (
	"fmt"
	"log"

	"autovalidate"
	"autovalidate/internal/datagen"
)

func main() {
	// 1. A background corpus T. In production this is your data lake;
	// here we synthesize one (120 files, ≈1300 columns).
	lake := datagen.Generate(datagen.Enterprise(120, 42))
	fmt.Println("lake:", lake.ComputeStats())

	// 2. The offline index: one scan of T, then O(1) lookups online.
	idx := autovalidate.BuildIndex(lake, autovalidate.DefaultBuildOptions())
	fmt.Println("index:", idx)

	// 3. Infer a rule from today's feed of a recurring pipeline.
	today, err := datagen.FreshColumn("date_mdy_text", 100, 7)
	if err != nil {
		log.Fatal(err)
	}
	opt := autovalidate.DefaultOptions()
	opt.M = 20 // scale the coverage requirement to the small lake
	rule, err := autovalidate.Infer(today, idx, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rule: %s (estimated FPR %.4f)\n", rule.Pattern, rule.EstimatedFPR)

	// 4. Tomorrow's feed from the same domain passes...
	tomorrow, _ := datagen.FreshColumn("date_mdy_text", 500, 8)
	rep, err := rule.Validate(tomorrow)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("same-domain batch:   ", rep)

	// 5. ...while a schema-drifted feed (a locale column landed in the
	// date position) alarms.
	drifted, _ := datagen.FreshColumn("locale", 500, 9)
	rep, err = rule.Validate(drifted)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("schema-drifted batch:", rep)
}
