// Mixed table: a realistic feed mixes machine-generated string columns
// (pattern rules — the paper's contribution), numeric columns (the §7
// future-work extension), and vocabulary columns (the §6 dictionary
// direction). AutoInfer picks the right rule form per column, and all
// three alarm on the right kind of drift.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"autovalidate"
	"autovalidate/internal/datagen"
)

func main() {
	lake := datagen.Generate(datagen.Enterprise(120, 21))
	idx := autovalidate.BuildIndex(lake, autovalidate.DefaultBuildOptions())
	opt := autovalidate.DefaultOptions()
	opt.M = 20

	rng := rand.New(rand.NewSource(8))
	train := map[string][]string{
		"order_ts":  mustCol("timestamp_us", 200, 31),
		"latency":   numbers(rng, 200, 120, 15),
		"market":    vocab(rng, 200, []string{"US", "UK", "DE", "JP", "FR"}),
		"entity_id": mustCol("kb_entity", 200, 32),
	}

	rules := map[string]*autovalidate.AutoRule{}
	for name, values := range train {
		rule, err := autovalidate.AutoInfer(values, idx, lake.Columns(), opt)
		if err != nil {
			fmt.Printf("%-10s no rule (%v)\n", name, err)
			continue
		}
		rules[name] = rule
		fmt.Printf("%-10s [%s] %s\n", name, rule.Kind, rule.Describe())
	}

	fmt.Println("\nvalidating a clean next-day feed:")
	clean := map[string][]string{
		"order_ts":  mustCol("timestamp_us", 400, 41),
		"latency":   numbers(rng, 400, 120, 15),
		"market":    vocab(rng, 400, []string{"US", "UK", "DE", "JP", "FR"}),
		"entity_id": mustCol("kb_entity", 400, 42),
	}
	report(rules, clean)

	fmt.Println("\nvalidating a drifted feed (timestamp format change, latency regression, market vocabulary shift):")
	drifted := map[string][]string{
		"order_ts":  mustCol("date_iso", 400, 43),                // format change
		"latency":   numbers(rng, 400, 480, 40),                  // 4x latency regression
		"market":    vocab(rng, 400, []string{"XX", "YY", "ZZ"}), // unknown markets
		"entity_id": mustCol("kb_entity", 400, 44),               // unchanged
	}
	report(rules, drifted)
}

func report(rules map[string]*autovalidate.AutoRule, feed map[string][]string) {
	for _, name := range []string{"order_ts", "latency", "market", "entity_id"} {
		rule, ok := rules[name]
		if !ok {
			continue
		}
		verdict := "ok"
		if rule.Flags(feed[name]) {
			verdict = "ALARM"
		}
		fmt.Printf("  %-10s %s\n", name, verdict)
	}
}

func mustCol(domain string, n int, seed int64) []string {
	vals, err := datagen.FreshColumn(domain, n, seed)
	if err != nil {
		log.Fatal(err)
	}
	return vals
}

func numbers(rng *rand.Rand, n int, mean, std float64) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%.1f", mean+std*rng.NormFloat64())
	}
	return out
}

func vocab(rng *rand.Rand, n int, words []string) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = words[rng.Intn(len(words))]
	}
	return out
}
