// Pipeline monitor: the paper's motivating scenario — a recurring daily
// pipeline whose upstream feed silently changes. Rules are learned once
// from day 0, then each day's feed is validated; on day 3 a data drift
// ("en-US" → "en_US" formatting change plus invalid "en-99" values, the
// intro's example) creeps in, and on day 5 two columns are swapped
// (schema drift).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"autovalidate"
	"autovalidate/internal/datagen"
)

func main() {
	lake := datagen.Generate(datagen.Enterprise(120, 1))
	idx := autovalidate.BuildIndex(lake, autovalidate.DefaultBuildOptions())

	opt := autovalidate.DefaultOptions()
	opt.M = 20

	// Day 0: learn rules from the first feed of the pipeline.
	feed := makeFeed(0, false, false)
	rules := autovalidate.NewRuleSet()
	for name, values := range feed {
		rule, err := autovalidate.Infer(values, idx, opt)
		if err != nil {
			fmt.Printf("day 0: column %-12s -> no rule (%v)\n", name, err)
			continue
		}
		rules.Add(name, rule)
		fmt.Printf("day 0: column %-12s -> %s\n", name, rule.Pattern)
	}

	// Days 1-6: validate each morning's feed.
	for day := 1; day <= 6; day++ {
		dataDrift := day == 3   // locale formatting change + invalid codes
		schemaDrift := day == 5 // order_id and locale columns swapped
		feed := makeFeed(int64(day), dataDrift, schemaDrift)
		var alarms []string
		for _, cr := range rules.ValidateColumns(feed) {
			if cr.Err != nil {
				log.Fatal(cr.Err)
			}
			if cr.Report.Alarm {
				alarms = append(alarms, fmt.Sprintf("%s (%s)", cr.Column, cr.Report))
			}
		}
		status := "OK"
		if len(alarms) > 0 {
			status = "ALARM: " + strings.Join(alarms, "; ")
		}
		fmt.Printf("day %d: %s\n", day, status)
	}
}

// makeFeed produces one day's three-column feed.
func makeFeed(seed int64, dataDrift, schemaDrift bool) map[string][]string {
	rng := rand.New(rand.NewSource(seed + 1000))
	n := 400
	orderIDs := make([]string, n)
	locales := make([]string, n)
	ts := make([]string, n)
	langs := []string{"en", "fr", "de", "ja", "pt"}
	regions := []string{"US", "GB", "DE", "JP", "BR"}
	for i := 0; i < n; i++ {
		orderIDs[i] = fmt.Sprintf("%08d", rng.Intn(100000000))
		sep := "-"
		region := regions[rng.Intn(len(regions))]
		if dataDrift {
			// The silent upstream change of the paper's intro.
			sep = "_"
			if rng.Intn(10) == 0 {
				region = "99" // invalid locale region
			}
		}
		locales[i] = langs[rng.Intn(len(langs))] + sep + region
		ts[i] = fmt.Sprintf("%d:%02d:%02d", rng.Intn(24), rng.Intn(60), rng.Intn(60))
	}
	if schemaDrift {
		orderIDs, locales = locales, orderIDs
	}
	return map[string][]string{"order_id": orderIDs, "locale": locales, "event_time": ts}
}
