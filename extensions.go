package autovalidate

import (
	"errors"

	"autovalidate/internal/core"
	"autovalidate/internal/dictval"
	"autovalidate/internal/domain"
	"autovalidate/internal/numeric"
	"autovalidate/internal/validate"
)

// The paper's §6/§7 point out that pattern validation fits
// machine-generated data, while numeric columns and natural-language
// columns drawn from fixed vocabularies call for different rule forms.
// This file exposes those two extensions and a combined entry point that
// picks the right rule form per column.

// Extension types, re-exported.
type (
	// NumericRule validates numeric columns by parseable-fraction,
	// distribution, and range drift (§7 future work).
	NumericRule = numeric.Rule
	// NumericReport is a numeric validation outcome.
	NumericReport = numeric.Report
	// NumericOptions configure numeric inference.
	NumericOptions = numeric.Options
	// DictRule validates vocabulary columns with a corpus-expanded
	// dictionary (§6's set-expansion direction).
	DictRule = dictval.Rule
	// DictReport is a dictionary validation outcome.
	DictReport = dictval.Report
	// DictOptions configure dictionary inference.
	DictOptions = dictval.Options
)

// Semantic-domain validation, re-exported from internal/domain: a
// registry of validators that reject well-formed-but-invalid values
// (broken check digits, impossible dates, bad UUID variant bits) the
// syntactic pattern cannot see.
type (
	// DomainValidator is one semantic value domain (checksum, RFC
	// grammar, calendar, accession scheme, learned vocabulary).
	DomainValidator = domain.Validator
	// DomainDetection is a proposed domain for a column sample.
	DomainDetection = domain.Detection
)

// RegisterDomainValidator adds a custom validator to the process-wide
// domain registry (built-ins register themselves from init()). A nil
// validator, empty name, or name collision is rejected with an error.
func RegisterDomainValidator(v DomainValidator) error { return domain.Register(v) }

// DomainValidators lists the registered validators, priority first.
func DomainValidators() []DomainValidator { return domain.Validators() }

// LookupDomainValidator finds a registered validator by name.
func LookupDomainValidator(name string) (DomainValidator, bool) { return domain.Lookup(name) }

// DetectDomain proposes the best-matching built-in domain for a column
// sample (≥90% of sampled values must validate).
func DetectDomain(values []string) (DomainDetection, bool) { return domain.Detect(values) }

// ProposeDomain is DetectDomain plus the learned closed-vocabulary
// fallback for categorical columns (dictval-backed).
func ProposeDomain(values []string) (DomainDetection, bool) { return domain.Propose(values) }

// NewVocabularyValidator builds a closed-vocabulary DomainValidator
// over the given words — the reconstruction path for a persisted
// vocabulary domain.
func NewVocabularyValidator(words []string) DomainValidator { return domain.NewVocabulary(words) }

// DefaultNumericOptions returns the numeric-rule defaults.
func DefaultNumericOptions() NumericOptions { return numeric.DefaultOptions() }

// DefaultDictOptions returns the dictionary-rule defaults.
func DefaultDictOptions() DictOptions { return dictval.DefaultOptions() }

// InferNumeric learns a numeric validation rule (§7 extension).
func InferNumeric(values []string, opt NumericOptions) (*NumericRule, error) {
	return numeric.Infer(values, opt)
}

// InferDictionary learns a corpus-expanded dictionary rule (§6
// extension).
func InferDictionary(values []string, cols []*Column, opt DictOptions) (*DictRule, error) {
	return dictval.Infer(values, cols, opt)
}

// LoadRule reads a pattern rule saved with Rule.Save.
func LoadRule(path string) (*Rule, error) { return validate.LoadRule(path) }

// LoadRuleSet reads a rule set saved with RuleSet.Save.
func LoadRuleSet(path string) (*RuleSet, error) { return validate.LoadRuleSet(path) }

// ParsePattern parses the canonical pattern notation (the format
// produced by Pattern.String and stored by Rule.Save).
func ParsePattern(s string) (Pattern, error) { return parseP(s) }

// RuleKind says which rule form AutoInfer chose for a column.
type RuleKind uint8

// Rule kinds.
const (
	KindPattern RuleKind = iota
	KindNumeric
	KindDictionary
	KindNone
)

// String names the kind.
func (k RuleKind) String() string {
	switch k {
	case KindPattern:
		return "pattern"
	case KindNumeric:
		return "numeric"
	case KindDictionary:
		return "dictionary"
	default:
		return "none"
	}
}

// AutoRule is the rule AutoInfer produced for one column: exactly one of
// the three rule fields is set, per Kind.
type AutoRule struct {
	Kind    RuleKind
	Pattern *Rule
	Numeric *NumericRule
	Dict    *DictRule
}

// Flags reports whether the rule alarms on a batch.
func (r *AutoRule) Flags(values []string) bool {
	switch r.Kind {
	case KindPattern:
		return r.Pattern.Flags(values)
	case KindNumeric:
		return r.Numeric.Flags(values)
	case KindDictionary:
		return r.Dict.Flags(values)
	default:
		return false
	}
}

// Describe returns a one-line description of the learned rule.
func (r *AutoRule) Describe() string {
	switch r.Kind {
	case KindPattern:
		return "pattern: " + r.Pattern.Pattern.String()
	case KindNumeric:
		return "numeric: distribution/range rule"
	case KindDictionary:
		return "dictionary: corpus-expanded vocabulary"
	default:
		return "none"
	}
}

// AutoInfer picks the right rule form for a column: a data-domain
// pattern when one is feasible (the paper's core contribution), a
// numeric rule for numeric columns, and a corpus-expanded dictionary for
// vocabulary-like columns — covering the full column mix of a real feed.
// cols supplies the corpus columns used for dictionary expansion; it may
// be nil to disable the dictionary fallback.
func AutoInfer(values []string, idx *Index, cols []*Column, opt Options) (*AutoRule, error) {
	// Numeric first: a pure-digit column is *also* patternable
	// (<digit>+), but distribution drift in it is invisible to a
	// pattern; the numeric rule subsumes the pattern's protection.
	if nr, err := numeric.Infer(values, numeric.DefaultOptions()); err == nil {
		return &AutoRule{Kind: KindNumeric, Numeric: nr}, nil
	}
	// Fixed-vocabulary columns next (§6): a categorical column like
	// {"US","UK","DE"} usually admits a pattern (<letter>+), but the
	// pattern cannot see a vocabulary shift; the dictionary can.
	if cols != nil && isCategorical(values) {
		if dr, derr := dictval.Infer(values, cols, dictval.DefaultOptions()); derr == nil {
			return &AutoRule{Kind: KindDictionary, Dict: dr}, nil
		}
	}
	pr, err := core.Infer(values, idx, opt)
	if err == nil {
		return &AutoRule{Kind: KindPattern, Pattern: pr}, nil
	}
	if !errors.Is(err, core.ErrNoFeasible) {
		return nil, err
	}
	if cols != nil {
		if dr, derr := dictval.Infer(values, cols, dictval.DefaultOptions()); derr == nil {
			return &AutoRule{Kind: KindDictionary, Dict: dr}, nil
		}
	}
	return nil, err
}

// isCategorical delegates to the domain package's vocabulary heuristic
// so AutoInfer and stream-domain proposal agree on what "fixed
// vocabulary" means.
func isCategorical(values []string) bool { return domain.LooksCategorical(values) }
