module autovalidate

go 1.24
