// Package autovalidate is a Go implementation of Auto-Validate (Song &
// He, SIGMOD 2021): unsupervised validation of string-valued data columns
// using data-domain patterns inferred from a data lake.
//
// The workflow has two halves, mirroring the paper's architecture
// (Figure 7):
//
//   - Offline, a corpus of lake columns is scanned once into an Index
//     that pre-aggregates, for every candidate pattern, its estimated
//     false-positive rate FPR_T and coverage Cov_T. Unlike the paper's
//     one-shot SCOPE job, the index is incrementally maintainable: newly
//     arrived tables fold in as deltas (Index.IngestColumns, avindex
//     -append, the service's POST /ingest), independently built indexes
//     combine with MergeIndexes, and persisted deltas compact
//     deterministically onto a base via generation counters — so a
//     growing lake never forces a full re-scan.
//
//   - Online, Infer selects for a query column the pattern minimizing
//     estimated FPR subject to FPR and coverage constraints (FMDV), with
//     vertical cuts for composite columns (FMDV-V), horizontal cuts for
//     ad-hoc non-conforming values (FMDV-H), or both (FMDV-VH, the
//     recommended default). The resulting Rule validates future batches
//     with a two-sample homogeneity test on the non-conforming fraction.
//
// A minimal end-to-end use:
//
//	corpus, _ := autovalidate.LoadCorpusDir("lake/")
//	idx := autovalidate.BuildIndex(corpus, autovalidate.DefaultBuildOptions())
//	rule, err := autovalidate.Infer(trainValues, idx, autovalidate.DefaultOptions())
//	if err == nil {
//	    report, _ := rule.Validate(tomorrowValues)
//	    if report.Alarm { ... }
//	}
package autovalidate

import (
	"autovalidate/internal/core"
	"autovalidate/internal/corpus"
	"autovalidate/internal/index"
	"autovalidate/internal/monitor"
	"autovalidate/internal/pattern"
	"autovalidate/internal/registry"
	"autovalidate/internal/service"
	"autovalidate/internal/stats"
	"autovalidate/internal/validate"
)

// Core data model, re-exported from the implementation packages.
type (
	// Corpus is a background data lake T: a set of tables of
	// string-valued columns.
	Corpus = corpus.Corpus
	// Table is one data file of the lake.
	Table = corpus.Table
	// Column is one string-valued column.
	Column = corpus.Column
	// CorpusStats are the Table 1 characteristics of a corpus.
	CorpusStats = corpus.Stats

	// Index is the offline index over a corpus (§2.4).
	Index = index.Index
	// IndexEntry is one pattern's pre-aggregated evidence.
	IndexEntry = index.Entry
	// IndexDelta is the evidence of one ingested batch of columns,
	// chained to a base index generation; persist with SaveIndexDelta
	// and fold into a base with Index.ApplyDelta or CompactIndex.
	IndexDelta = index.Delta
	// BuildOptions configure offline indexing.
	BuildOptions = index.BuildOptions

	// Pattern is a data-domain pattern over the Figure 4 hierarchy.
	Pattern = pattern.Pattern
	// EnumOptions configure pattern enumeration (Algorithm 1).
	EnumOptions = pattern.EnumOptions

	// Options configure inference (strategy, r, m, θ, τ).
	Options = core.Options
	// Strategy selects the FMDV variant.
	Strategy = core.Strategy

	// Rule is a learned validation rule.
	Rule = validate.Rule
	// Report is the outcome of validating a batch.
	Report = validate.Report
	// RuleSet validates whole tables, one rule per column.
	RuleSet = validate.RuleSet
	// ColumnReport pairs a column with its report.
	ColumnReport = validate.ColumnReport

	// TwoSampleTest selects the drift test of §4.
	TwoSampleTest = stats.TwoSampleTest

	// Service is the long-running HTTP validation service: one loaded
	// index, /infer and /validate endpoints, and an LRU cache of
	// inferred rules keyed by column fingerprint.
	Service = service.Server
	// ServiceConfig configures a Service.
	ServiceConfig = service.Config
	// ServiceStats snapshots a Service's cache and traffic counters.
	ServiceStats = service.Stats
	// InferRequest / InferResponse and ValidateRequest /
	// ValidateResponse are the service's JSON wire types, exported so
	// Go clients can talk to avserve without hand-rolled structs.
	InferRequest     = service.InferRequest
	InferResponse    = service.InferResponse
	ValidateRequest  = service.ValidateRequest
	ValidateResponse = service.ValidateResponse
	// IngestRequest / IngestResponse are the wire types of the
	// service's POST /ingest endpoint, which folds newly arrived
	// tables into the served index without a restart.
	IngestRequest  = service.IngestRequest
	IngestResponse = service.IngestResponse
	// IngestTable / IngestColumn are the batch elements of an
	// IngestRequest.
	IngestTable  = service.IngestTable
	IngestColumn = service.IngestColumn
	// RuleParams are the per-request inference overrides.
	RuleParams = service.RuleParams

	// StreamRegistry is the durable, versioned store of named streams
	// and their compiled validation rules — the registry half of
	// continuous validation. Persist with its Save method; re-open with
	// LoadStreamRegistry.
	StreamRegistry = registry.Registry
	// Stream is one version of one named stream's rule, with its FMDV
	// evidence snapshot and index-generation provenance.
	Stream = registry.Stream

	// MonitorPolicy configures the continuous-validation engine's
	// escalation ladder (alarm → quarantine → re-infer).
	MonitorPolicy = monitor.Policy
	// MonitorEngine evaluates arriving batches of registered streams,
	// keeping per-stream rolling history and drift state.
	MonitorEngine = monitor.Engine
	// MonitorDecision is one Check outcome: the batch verdict plus the
	// stream's rolling state after folding it in.
	MonitorDecision = monitor.Decision
	// MonitorVerdict is the per-batch record retained in the history
	// window.
	MonitorVerdict = monitor.Verdict
	// MonitorHistory is a snapshot of one stream's rolling state.
	MonitorHistory = monitor.History
	// MonitorAction is the per-batch decision kind.
	MonitorAction = monitor.Action

	// StreamInfo / StreamPutRequest / StreamCheckRequest /
	// StreamCheckResponse / StreamListResponse are the wire types of the
	// service's /streams endpoints.
	StreamInfo          = service.StreamInfo
	StreamPutRequest    = service.StreamPutRequest
	StreamCheckRequest  = service.StreamCheckRequest
	StreamCheckResponse = service.StreamCheckResponse
	StreamListResponse  = service.StreamListResponse
)

// Monitor actions, in escalation order.
const (
	ActionAccept     = monitor.Accept
	ActionAlarm      = monitor.Alarm
	ActionQuarantine = monitor.Quarantine
	ActionReinfer    = monitor.Reinfer
)

// FMDV variants (§2-§4). FMDVVH is the paper's recommended default.
const (
	FMDV   = core.FMDV
	FMDVV  = core.FMDVV
	FMDVH  = core.FMDVH
	FMDVVH = core.FMDVVH
)

// Drift tests (§4): Fisher's exact test (default) and Pearson's
// chi-squared with Yates correction.
const (
	Fisher     = stats.Fisher
	ChiSquared = stats.ChiSquared
)

// Inference failure modes.
var (
	// ErrNoFeasible means no pattern satisfied the FPR and coverage
	// constraints; Auto-Validate conservatively declines to produce a
	// rule rather than risk false alarms.
	ErrNoFeasible = core.ErrNoFeasible
	// ErrEmptyColumn is returned for empty query columns.
	ErrEmptyColumn = core.ErrEmptyColumn
	// ErrEmptyBatch is returned when validating an empty batch.
	ErrEmptyBatch = validate.ErrEmptyBatch
)

// DefaultOptions returns the paper's recommended configuration: FMDV-VH
// with r=0.1, m=100, θ=0.1, τ=8, two-tailed Fisher at significance 0.01.
// Scale m to your lake: it is the minimum number of corpus columns that
// must exhibit a pattern before it is trusted (§2.2's requirement 2).
func DefaultOptions() Options { return core.DefaultOptions() }

// DefaultBuildOptions returns the recommended offline-indexing settings
// (τ=8 with Algorithm 1's coverage pruning).
func DefaultBuildOptions() BuildOptions { return index.DefaultBuildOptions() }

// DefaultEnumOptions returns the default pattern-enumeration settings.
func DefaultEnumOptions() EnumOptions { return pattern.DefaultEnumOptions() }

// LoadCorpusDir reads a directory of .csv / .tsv files into a corpus.
func LoadCorpusDir(dir string) (*Corpus, error) { return corpus.LoadDir(dir) }

// LoadTable reads one CSV/TSV file.
func LoadTable(path string) (*Table, error) { return corpus.LoadTable(path) }

// BuildIndex scans the corpus into an offline index (one pass, parallel).
func BuildIndex(c *Corpus, opt BuildOptions) *Index {
	return index.Build(c.Columns(), opt)
}

// LoadIndex reads an index written by Index.Save — the current sharded v3
// format (shards load in parallel, generation counters preserved) or the
// legacy v2/v1 layouts.
func LoadIndex(path string) (*Index, error) { return index.Load(path) }

// IngestCorpus folds a batch of newly arrived tables into an existing
// index incrementally: only the new columns are scanned (same shard-aware
// map-reduce dataflow as BuildIndex), their evidence merges shard-by-shard
// into the existing aggregates, and the index's generation advances. The
// returned delta can be persisted with SaveIndexDelta for replication or
// later compaction. Enumeration options are taken from the index itself
// so increments stay consistent with the original build.
func IngestCorpus(idx *Index, c *Corpus, opt BuildOptions) (*IndexDelta, error) {
	return idx.IngestColumns(c.Columns(), opt)
}

// BuildIndexDelta scans new columns into a delta against a base index
// without mutating the base; apply it later with Index.ApplyDelta or
// CompactIndex.
func BuildIndexDelta(base *Index, cols []*Column, opt BuildOptions) *IndexDelta {
	return index.BuildDelta(base, cols, opt)
}

// MergeIndexes combines two independently built indexes over disjoint
// column sets into a new index equivalent to building over the union;
// neither input is mutated.
func MergeIndexes(a, b *Index) (*Index, error) { return index.Merge(a, b) }

// CompactIndex applies a chain of deltas onto a base index in generation
// order; an out-of-order or repeated delta is an error, reported before
// anything is applied (the base is left untouched).
func CompactIndex(base *Index, deltas ...*IndexDelta) error {
	return index.Compact(base, deltas...)
}

// SaveIndexDelta / LoadIndexDelta persist one ingest batch's evidence in
// the v3 sharded format, flagged so a delta file can never be mistaken
// for a full index.
func SaveIndexDelta(path string, d *IndexDelta) error { return index.SaveDelta(path, d) }

// LoadIndexDelta reads a delta written by SaveIndexDelta.
func LoadIndexDelta(path string) (*IndexDelta, error) { return index.LoadDelta(path) }

// DefaultIndexShards returns the default index shard count for this
// machine.
func DefaultIndexShards() int { return index.DefaultShards() }

// NewService builds the long-running validation service over a loaded
// index. Serve its Handler with net/http (or use cmd/avserve).
func NewService(cfg ServiceConfig) (*Service, error) { return service.New(cfg) }

// NewStreamRegistry returns an empty stream registry.
func NewStreamRegistry() *StreamRegistry { return registry.New() }

// LoadStreamRegistry reads a registry written by StreamRegistry.Save
// (length-prefixed, CRC-checked sections; corrupt files error rather
// than panic).
func LoadStreamRegistry(path string) (*StreamRegistry, error) { return registry.Load(path) }

// DefaultMonitorPolicy returns the recommended continuous-validation
// policy: drift tests at significance 0.01 against the rule's expected
// FPR bound, quarantine after 3 consecutive alarming batches,
// re-inference after 6 (or on the first drifting batch of a rule whose
// index evidence went stale).
func DefaultMonitorPolicy() MonitorPolicy { return monitor.DefaultPolicy() }

// NewMonitorEngine builds a continuous-validation engine under the
// policy (zero fields fall back to DefaultMonitorPolicy values).
func NewMonitorEngine(p MonitorPolicy) *MonitorEngine { return monitor.NewEngine(p) }

// FingerprintColumn returns the cache fingerprint the service assigns to
// a training column under the given inference options.
func FingerprintColumn(values []string, opt Options) string {
	return service.Fingerprint(values, opt)
}

// Infer produces a validation rule for a query column using the chosen
// FMDV variant against the offline index (§2.3, §3, §4).
func Infer(values []string, idx *Index, opt Options) (*Rule, error) {
	return core.Infer(values, idx, opt)
}

// InferNoIndex runs basic FMDV by scanning corpus columns directly for
// every hypothesis — the Figure 14 "no-index" reference point. Prefer
// Infer with a prebuilt Index.
func InferNoIndex(values []string, cols []*Column, opt Options) (*Rule, error) {
	return core.InferNoIndex(values, cols, opt)
}

// NewRuleSet returns an empty per-column rule set.
func NewRuleSet() *RuleSet { return validate.NewRuleSet() }

// InferTable infers one rule per column of a table, skipping columns
// where no feasible pattern exists, and returns the resulting rule set
// together with the per-column inference errors.
func InferTable(t *Table, idx *Index, opt Options) (*RuleSet, map[string]error) {
	rs := validate.NewRuleSet()
	errs := map[string]error{}
	for _, col := range t.Columns {
		rule, err := core.Infer(col.Values, idx, opt)
		if err != nil {
			errs[col.Name] = err
			continue
		}
		rs.Add(col.Name, rule)
	}
	return rs, errs
}

// parseP is the internal hook for ParsePattern (kept here so the
// extensions file stays dependency-light).
func parseP(s string) (Pattern, error) { return pattern.Parse(s) }
