package autovalidate

import (
	"sort"

	"autovalidate/internal/core"
)

// InferTagPattern implements the dual formulation of §2.3 used by the
// Azure Purview "Auto-Tag" feature: given example values of a domain,
// find the most restrictive pattern (minimum corpus coverage) whose
// false-negative rate on the examples is at most maxFNR. The returned
// rule's pattern can be used to tag other columns of the same domain.
func InferTagPattern(examples []string, idx *Index, opt Options, maxFNR float64) (*Rule, error) {
	return core.InferTag(examples, idx, opt, maxFNR)
}

// TagMatch is one column tagged by a pattern.
type TagMatch struct {
	Column *Column
	// MatchFraction is the share of the column's values the tag
	// pattern matches.
	MatchFraction float64
}

// TagColumns scans a corpus for columns whose values match the tag
// pattern in at least minFraction of rows, returning matches ordered by
// match fraction — the "tag related columns of the same type" workflow.
func TagColumns(c *Corpus, tag Pattern, minFraction float64) []TagMatch {
	var out []TagMatch
	for _, col := range c.Columns() {
		if len(col.Values) == 0 {
			continue
		}
		frac := float64(tag.MatchCount(col.Values)) / float64(len(col.Values))
		if frac >= minFraction {
			out = append(out, TagMatch{Column: col, MatchFraction: frac})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MatchFraction != out[j].MatchFraction {
			return out[i].MatchFraction > out[j].MatchFraction
		}
		return out[i].Column.ID() < out[j].Column.ID()
	})
	return out
}
