package autovalidate_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"autovalidate"
	"autovalidate/internal/datagen"
)

var (
	apiOnce sync.Once
	apiC    *autovalidate.Corpus
	apiIdx  *autovalidate.Index
)

func apiFixture(t *testing.T) (*autovalidate.Corpus, *autovalidate.Index) {
	t.Helper()
	apiOnce.Do(func() {
		apiC = datagen.Generate(datagen.Enterprise(80, 77))
		apiIdx = autovalidate.BuildIndex(apiC, autovalidate.DefaultBuildOptions())
	})
	return apiC, apiIdx
}

func apiOptions() autovalidate.Options {
	opt := autovalidate.DefaultOptions()
	opt.M = 10
	return opt
}

func TestPublicEndToEnd(t *testing.T) {
	_, idx := apiFixture(t)
	train, err := datagen.FreshColumn("date_mdy_text", 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	rule, err := autovalidate.Infer(train, idx, apiOptions())
	if err != nil {
		t.Fatal(err)
	}
	good, _ := datagen.FreshColumn("date_mdy_text", 300, 10)
	rep, err := rule.Validate(good)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Alarm {
		t.Errorf("clean future batch alarmed: %v", rep)
	}
	bad, _ := datagen.FreshColumn("locale", 300, 11)
	rep, err = rule.Validate(bad)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Alarm {
		t.Errorf("drifted batch not flagged: %v", rep)
	}
}

func TestPublicCorpusRoundTrip(t *testing.T) {
	c, _ := apiFixture(t)
	dir := t.TempDir()
	sub := &autovalidate.Corpus{Tables: c.Tables[:3]}
	if err := sub.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := autovalidate.LoadCorpusDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumColumns() != sub.NumColumns() {
		t.Errorf("round trip: %d cols, want %d", got.NumColumns(), sub.NumColumns())
	}
}

func TestPublicIndexPersistence(t *testing.T) {
	_, idx := apiFixture(t)
	path := filepath.Join(t.TempDir(), "lake.idx")
	if err := idx.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := autovalidate.LoadIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != idx.Size() {
		t.Errorf("index round trip: %d entries, want %d", got.Size(), idx.Size())
	}
}

func TestPublicInferTable(t *testing.T) {
	c, idx := apiFixture(t)
	var tbl *autovalidate.Table
	for _, cand := range c.Tables {
		if len(cand.Columns) >= 6 {
			tbl = cand
			break
		}
	}
	if tbl == nil {
		t.Skip("no wide table in fixture")
	}
	rs, errs := autovalidate.InferTable(tbl, idx, apiOptions())
	if len(rs.Rules)+len(errs) != len(tbl.Columns) {
		t.Errorf("rules+errors = %d+%d, want %d columns", len(rs.Rules), len(errs), len(tbl.Columns))
	}
	if len(rs.Rules) == 0 {
		t.Error("expected at least one inferable column")
	}
	cols := map[string][]string{}
	for _, col := range tbl.Columns {
		cols[col.Name] = col.Values
	}
	for _, cr := range rs.ValidateColumns(cols) {
		if cr.Err != nil {
			t.Errorf("column %s: %v", cr.Column, cr.Err)
		}
		if cr.Report.Alarm {
			t.Errorf("rule alarms on its own training table column %s: %v", cr.Column, cr.Report)
		}
	}
}

func TestPublicTagging(t *testing.T) {
	c, idx := apiFixture(t)
	examples, _ := datagen.FreshColumn("hex_id16", 60, 5)
	rule, err := autovalidate.InferTagPattern(examples, idx, apiOptions(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	matches := autovalidate.TagColumns(c, rule.Pattern, 0.9)
	if len(matches) == 0 {
		t.Fatal("tagging found no hex-id columns in a lake that contains them")
	}
	hexCols := 0
	for _, m := range matches {
		if m.Column.Domain == "hex_id16" || m.Column.Domain == "dirty:hex_id16" {
			hexCols++
		}
	}
	if hexCols == 0 {
		t.Errorf("no tagged column is actually a hex-id column: %v", matches[0].Column.Domain)
	}
	for i := 1; i < len(matches); i++ {
		if matches[i].MatchFraction > matches[i-1].MatchFraction+1e-12 {
			t.Error("matches not sorted by fraction")
		}
	}
}

func TestPublicErrors(t *testing.T) {
	_, idx := apiFixture(t)
	if _, err := autovalidate.Infer(nil, idx, apiOptions()); !errors.Is(err, autovalidate.ErrEmptyColumn) {
		t.Errorf("want ErrEmptyColumn, got %v", err)
	}
	opt := apiOptions()
	opt.M = 1 << 30
	vals, _ := datagen.FreshColumn("locale", 50, 3)
	if _, err := autovalidate.Infer(vals, idx, opt); !errors.Is(err, autovalidate.ErrNoFeasible) {
		t.Errorf("want ErrNoFeasible, got %v", err)
	}
}

func ExampleInfer() {
	// A tiny lake with three date columns provides the corpus evidence.
	lake := &autovalidate.Corpus{}
	tbl := &autovalidate.Table{Name: "t"}
	for i := 0; i < 3; i++ {
		col := &autovalidate.Column{Table: "t", Name: fmt.Sprintf("d%d", i)}
		for m := 0; m < 12; m++ {
			col.Values = append(col.Values, fmt.Sprintf("%s %02d %d", []string{
				"Jan", "Feb", "Mar", "Apr", "May", "Jun",
				"Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}[m], 10+i, 2018+i))
		}
		tbl.Columns = append(tbl.Columns, col)
	}
	lake.Add(tbl)
	idx := autovalidate.BuildIndex(lake, autovalidate.DefaultBuildOptions())

	opt := autovalidate.DefaultOptions()
	opt.Strategy = autovalidate.FMDV
	opt.M = 2 // tiny lake: trust patterns seen in ≥2 columns
	rule, err := autovalidate.Infer([]string{"Mar 01 2019", "Mar 02 2019", "Mar 03 2019"}, idx, opt)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(rule.Pattern)
	// Output: <letter>{3} <digit>{2} <digit>{4}
}
