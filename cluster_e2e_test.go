package autovalidate_test

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestClusterEndToEnd stands up a real 3-process cluster — an avserve
// leader, an avserve follower, and an avgateway over both — and drives
// it the way an operator would: validate through the gateway, register
// a stream (consistent-hashed to one member), ingest new tables on the
// leader, and watch the follower converge to the leader's index
// generation within the delta-poll interval.
func TestClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and starts processes; skipped in -short")
	}
	dir := t.TempDir()
	bin := func(name string) string { return filepath.Join(dir, name) }
	for _, tool := range []string{"avgen", "avindex", "avserve", "avgateway"} {
		out, err := exec.Command("go", "build", "-o", bin(tool), "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}

	// Lake + index, exactly as the single-node pipeline would.
	lake := filepath.Join(dir, "lake")
	if out, err := exec.Command(bin("avgen"), "-profile", "enterprise", "-tables", "40", "-seed", "3", "-out", lake).CombinedOutput(); err != nil {
		t.Fatalf("avgen: %v\n%s", err, out)
	}
	idx := filepath.Join(dir, "lake.idx")
	if out, err := exec.Command(bin("avindex"), "-corpus", lake, "-out", idx, "-tau", "8").CombinedOutput(); err != nil {
		t.Fatalf("avindex: %v\n%s", err, out)
	}

	// startProc launches a server process and extracts its listen
	// address from the "listening on" line. stderr (the structured JSON
	// log stream) is captured to <logName>.stderr.log so assertions can
	// grep for trace IDs and failures can ship the logs as artifacts.
	stderrLog := func(logName string) string { return filepath.Join(dir, logName+".stderr.log") }
	startProc := func(logName, name string, args ...string) (addr string) {
		t.Helper()
		cmd := exec.Command(bin(name), args...)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		errFile, err := os.Create(stderrLog(logName))
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = errFile
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", name, err)
		}
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait(); errFile.Close() })
		sc := bufio.NewScanner(stdout)
		deadline := time.After(30 * time.Second)
		lineCh := make(chan string, 16)
		go func() {
			for sc.Scan() {
				lineCh <- sc.Text()
			}
			close(lineCh)
		}()
		for {
			select {
			case line, ok := <-lineCh:
				if !ok {
					t.Fatalf("%s exited before reporting a listen address", name)
				}
				if i := strings.Index(line, "listening on "); i >= 0 {
					// Keep draining stdout so the process never blocks
					// on a full pipe.
					go func() {
						for range lineCh {
						}
					}()
					return strings.TrimSpace(line[i+len("listening on "):])
				}
			case <-deadline:
				t.Fatalf("%s did not report a listen address", name)
			}
		}
	}

	// Each member keeps its own drift-forensics journal: the gateway's
	// /cluster/events must find an alarm on whichever member the ring
	// pinned the stream to.
	journalDir := func(logName string) string { return filepath.Join(dir, logName+"-journal") }
	leaderAddr := startProc("leader", "avserve", "-index", idx, "-leader", "-m", "5",
		"-journal", journalDir("leader"),
		"-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0")
	leaderURL := "http://" + leaderAddr
	followerAddr := startProc("follower", "avserve", "-follow", leaderURL, "-m", "5", "-poll", "200ms",
		"-journal", journalDir("follower"),
		"-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0")
	followerURL := "http://" + followerAddr
	gatewayAddr := startProc("gateway", "avgateway", "-members", leaderURL+","+followerURL, "-check", "100ms",
		"-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0")
	gatewayURL := "http://" + gatewayAddr

	// On failure, snapshot each process's /debug/traces ring and logs
	// into $CLUSTER_E2E_ARTIFACTS (CI uploads the directory) so a flaky
	// run leaves its whole trace history behind.
	if artDir := os.Getenv("CLUSTER_E2E_ARTIFACTS"); artDir != "" {
		t.Cleanup(func() {
			if !t.Failed() {
				return
			}
			if err := os.MkdirAll(artDir, 0o755); err != nil {
				t.Logf("artifacts: %v", err)
				return
			}
			for name, base := range map[string]string{
				"leader": leaderURL, "follower": followerURL, "gateway": gatewayURL,
			} {
				if resp, err := http.Get(base + "/debug/traces"); err == nil {
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					os.WriteFile(filepath.Join(artDir, name+".traces.json"), body, 0o644)
				}
				if logs, err := os.ReadFile(stderrLog(name)); err == nil {
					os.WriteFile(filepath.Join(artDir, name+".stderr.log"), logs, 0o644)
				}
				// The raw journal segments travel too: avtail or a journal
				// replay can reconstruct the decision history offline.
				if src := journalDir(name); name != "gateway" {
					dst := filepath.Join(artDir, name+"-journal")
					if err := os.MkdirAll(dst, 0o755); err == nil {
						if err := os.CopyFS(dst, os.DirFS(src)); err != nil {
							t.Logf("artifacts: copying %s journal: %v", name, err)
						}
					}
				}
			}
		})
	}

	waitReady := func(base string) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for {
			resp, err := http.Get(base + "/readyz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never became ready", base)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	waitReady(leaderURL)
	waitReady(followerURL) // 200 only after the snapshot bootstrap

	files, err := filepath.Glob(filepath.Join(lake, "*.csv"))
	if err != nil || len(files) == 0 {
		t.Fatalf("lake files: %v %v", files, err)
	}

	postJSON := func(method, u string, body any) (int, map[string]any) {
		t.Helper()
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(method, u, bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", method, u, err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		out := map[string]any{}
		json.Unmarshal(raw, &out)
		return resp.StatusCode, out
	}

	// A training column from the lake: not every generated column admits
	// a pattern (natural-language ones don't), so probe the leader's
	// /infer for the first feasible one.
	var train []string
	for _, file := range files {
		for col := 0; col < 4 && train == nil; col++ {
			cand := csvColumn(t, file, col)
			if len(cand) < 20 {
				continue
			}
			if code, _ := postJSON(http.MethodPost, leaderURL+"/infer", map[string]any{"values": cand}); code == http.StatusOK {
				train = cand
			}
		}
		if train != nil {
			break
		}
	}
	if train == nil {
		t.Fatal("no patternable training column found in the lake")
	}

	// /validate through the gateway reaches both members round-robin;
	// every request must succeed.
	for i := 0; i < 6; i++ {
		code, out := postJSON(http.MethodPost, gatewayURL+"/validate", map[string]any{
			"train": train, "values": train,
		})
		if code != http.StatusOK {
			t.Fatalf("gateway validate %d = %d (%v)", i, code, out)
		}
	}

	// Register a stream through the gateway: consistent-hashed to one
	// member; if that member is the follower, the write proxies to the
	// leader and replicates back within one poll interval. The check
	// retries across that staleness bound — the documented consistency
	// model, not a workaround.
	if code, out := postJSON(http.MethodPut, gatewayURL+"/streams/feed", map[string]any{"train": train}); code != http.StatusOK {
		t.Fatalf("gateway stream put = %d (%v)", code, out)
	}
	checkDeadline := time.Now().Add(5 * time.Second) // poll is 200ms
	var checkHeader http.Header
	for {
		code, out, hdr := postJSONHdr(t, http.MethodPost, gatewayURL+"/streams/feed/check", map[string]any{"values": train})
		if code == http.StatusOK {
			checkHeader = hdr
			break
		}
		if code != http.StatusNotFound || time.Now().After(checkDeadline) {
			t.Fatalf("gateway stream check = %d (%v)", code, out)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// One checked batch is one trace: the gateway minted the trace ID
	// (stamped on the response), and the gateway proxy span, the
	// member's route-handler span, and the monitor-check span all hang
	// off it. Spans land in the ring just after the response is written,
	// so poll briefly.
	traceID := checkHeader.Get("X-Trace-Id")
	if len(traceID) != 32 {
		t.Fatalf("gateway response X-Trace-Id = %q, want a 32-hex trace ID", traceID)
	}
	memberURL := checkHeader.Get("X-Autovalidate-Member")
	if memberURL == "" {
		t.Fatal("gateway response missing X-Autovalidate-Member")
	}
	spanNames := func(base string) map[string]int {
		t.Helper()
		resp, err := http.Get(base + "/debug/traces?trace=" + traceID)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var dump struct {
			Spans []struct {
				Name string `json:"name"`
			} `json:"spans"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
			t.Fatal(err)
		}
		names := map[string]int{}
		for _, s := range dump.Spans {
			names[s.Name]++
		}
		return names
	}
	traceDeadline := time.Now().Add(5 * time.Second)
	for {
		gw := spanNames(gatewayURL)
		member := spanNames(memberURL)
		total := gw["gateway.proxy"] + member["POST /streams/{name}/check"] + member["monitor.check"]
		if gw["gateway.proxy"] >= 1 && member["POST /streams/{name}/check"] >= 1 &&
			member["monitor.check"] >= 1 && total >= 3 {
			break
		}
		if time.Now().After(traceDeadline) {
			t.Fatalf("trace %s incomplete: gateway spans %v, member spans %v", traceID, gw, member)
		}
		time.Sleep(50 * time.Millisecond)
	}
	// The same trace ID appears in the gateway's structured log line.
	waitLogContains := func(logName, needle string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			data, _ := os.ReadFile(stderrLog(logName))
			if strings.Contains(string(data), needle) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s stderr log never mentioned %q", logName, needle)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	waitLogContains("gateway", traceID)

	// Drift forensics across the cluster: a garbage batch through the
	// gateway alarms on whichever member the ring pinned "feed" to, the
	// response carries the journal event ID, and the gateway's merged
	// /cluster/events serves that exact event — original trace ID, alarm
	// action, failure attribution — from exactly one member.
	garbage := make([]string, 25)
	for i := range garbage {
		garbage[i] = "!!drift-" + strings.Repeat("x", i%3) + "!!"
	}
	alarmCode, alarmOut, alarmHdr := postJSONHdr(t, http.MethodPost, gatewayURL+"/streams/feed/check", map[string]any{"values": garbage})
	if alarmCode != http.StatusOK {
		t.Fatalf("gateway garbage check = %d (%v)", alarmCode, alarmOut)
	}
	alarmTrace := alarmHdr.Get("X-Trace-Id")
	if len(alarmTrace) != 32 {
		t.Fatalf("garbage check X-Trace-Id = %q, want a 32-hex trace ID", alarmTrace)
	}
	alarmEventID, _ := alarmOut["event_id"].(float64)
	if alarmEventID <= 0 {
		t.Fatalf("garbage check response missing journal event_id: %v", alarmOut)
	}
	{
		resp, err := http.Get(gatewayURL + "/cluster/events?kind=decision&stream=feed&trace=" + alarmTrace)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var merged struct {
			Events []struct {
				ID      float64         `json:"id"`
				Action  string          `json:"action"`
				TraceID string          `json:"trace_id"`
				Member  string          `json:"member"`
				Detail  json.RawMessage `json:"detail"`
			} `json:"events"`
			Members int `json:"members"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&merged); err != nil {
			t.Fatal(err)
		}
		if merged.Members != 2 {
			t.Fatalf("/cluster/events answered by %d members, want 2", merged.Members)
		}
		if len(merged.Events) != 1 {
			t.Fatalf("trace %s matched %d cluster events, want exactly 1: %+v", alarmTrace, len(merged.Events), merged.Events)
		}
		ev := merged.Events[0]
		if ev.TraceID != alarmTrace || ev.ID != alarmEventID {
			t.Fatalf("cluster event (id=%v trace=%s) does not match the check response (id=%v trace=%s)",
				ev.ID, ev.TraceID, alarmEventID, alarmTrace)
		}
		if ev.Action != "alarm" {
			t.Fatalf("journaled action = %q, want alarm", ev.Action)
		}
		if ev.Member != leaderURL && ev.Member != followerURL {
			t.Fatalf("cluster event attributed to unknown member %q", ev.Member)
		}
		var detail struct {
			Verdict struct {
				Attribution *struct {
					Classes []json.RawMessage `json:"classes"`
				} `json:"attribution"`
			} `json:"verdict"`
		}
		if err := json.Unmarshal(ev.Detail, &detail); err != nil {
			t.Fatalf("decoding journaled decision detail: %v", err)
		}
		if detail.Verdict.Attribution == nil || len(detail.Verdict.Attribution.Classes) == 0 {
			t.Fatalf("journaled alarm carries no failure attribution: %s", ev.Detail)
		}
	}

	// Drive /validate through the gateway until the follower answers
	// one, then assert the gateway-originated trace ID shows up in the
	// follower's structured logs — cross-process correlation, the point
	// of propagating traceparent.
	followerTraceDeadline := time.Now().Add(10 * time.Second)
	for {
		code, _, hdr := postJSONHdr(t, http.MethodPost, gatewayURL+"/validate", map[string]any{
			"train": train, "values": train,
		})
		if code != http.StatusOK {
			t.Fatalf("gateway validate while hunting the follower = %d", code)
		}
		if hdr.Get("X-Autovalidate-Member") == followerURL {
			waitLogContains("follower", hdr.Get("X-Trace-Id"))
			break
		}
		if time.Now().After(followerTraceDeadline) {
			t.Fatal("round-robin never routed a /validate to the follower")
		}
	}

	// Ingest a second lake file on the leader and watch the follower
	// converge within the poll interval (plus margin).
	generation := func(base string) float64 {
		t.Helper()
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		g, _ := h["generation"].(float64)
		return g
	}
	if g := generation(followerURL); g != 0 {
		t.Fatalf("follower generation before ingest = %v, want 0", g)
	}
	arrival := csvColumn(t, files[1%len(files)], 0)
	code, out := postJSON(http.MethodPost, leaderURL+"/ingest", map[string]any{
		"tables": []map[string]any{{
			"name":    "arrival",
			"columns": []map[string]any{{"name": "c0", "values": arrival}},
		}},
	})
	if code != http.StatusOK {
		t.Fatalf("leader ingest = %d (%v)", code, out)
	}
	wantGen := generation(leaderURL)
	if wantGen != 1 {
		t.Fatalf("leader generation after ingest = %v, want 1", wantGen)
	}
	deadline := time.Now().Add(10 * time.Second) // poll is 200ms; leave CI margin
	for generation(followerURL) != wantGen {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at generation %v, leader at %v", generation(followerURL), wantGen)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The gateway's member introspection sees both members healthy.
	resp, err := http.Get(gatewayURL + "/gateway/members")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var members struct {
		Members []struct {
			URL     string `json:"url"`
			Healthy bool   `json:"healthy"`
		} `json:"members"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&members); err != nil {
		t.Fatal(err)
	}
	if len(members.Members) != 2 {
		t.Fatalf("gateway reports %d members, want 2", len(members.Members))
	}
	for _, m := range members.Members {
		if !m.Healthy {
			t.Fatalf("member %s unhealthy at end of test", m.URL)
		}
	}
}

// postJSONHdr sends a JSON request and returns status, decoded body,
// and the response headers (for X-Trace-Id / X-Autovalidate-Member
// correlation assertions).
func postJSONHdr(t *testing.T, method, u string, body any) (int, map[string]any, http.Header) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(method, u, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, u, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	out := map[string]any{}
	json.Unmarshal(raw, &out)
	return resp.StatusCode, out, resp.Header
}

// csvColumn reads column i of a CSV file (skipping the header row).
func csvColumn(t *testing.T, path string, i int) []string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	var vals []string
	for r, row := range rows {
		if r == 0 || i >= len(row) {
			continue
		}
		vals = append(vals, row[i])
	}
	return vals
}
