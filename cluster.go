package autovalidate

import (
	"io"

	"autovalidate/internal/cluster"
	"autovalidate/internal/index"
)

// Replicated-cluster surface: one leader ingests the lake and ships
// state — full snapshots (index + stream registry as one framed,
// checksummed artifact) plus the retained chain of ingest deltas as a
// replication log — to any number of follower replicas, which serve
// /infer, /validate, and stream checks read-only and proxy writes back
// to the leader. A Gateway consistent-hashes stream traffic across the
// member list (pinning each stream's monitor history to one replica)
// and round-robins stateless validation with health-checked failover.
// Followers are eventually consistent, bounded by the delta-poll
// interval; see the README's Deployment section for the topology.
type (
	// ClusterLeader layers /replication/{snapshot,deltas,registry} over
	// a Service built with a DeltaLog.
	ClusterLeader = cluster.Leader
	// ClusterFollower drives one replica: snapshot bootstrap, then
	// poll-and-apply of the leader's delta chain.
	ClusterFollower = cluster.Follower
	// ClusterFollowerConfig configures a follower's catch-up loop.
	ClusterFollowerConfig = cluster.FollowerConfig
	// ClusterFollowerStatus snapshots a follower's replication progress.
	ClusterFollowerStatus = cluster.FollowerStatus
	// Gateway routes traffic across cluster members: consistent-hash
	// for streams, round-robin with failover for everything else.
	Gateway = cluster.Gateway
	// GatewayConfig configures a Gateway.
	GatewayConfig = cluster.GatewayConfig
	// GatewayMemberInfo is one member's routing state.
	GatewayMemberInfo = cluster.MemberInfo
	// IndexDeltaLog retains applied ingest deltas as the replication
	// log a ClusterLeader serves from.
	IndexDeltaLog = index.DeltaLog
)

// NewClusterLeader wraps a service for replication; the service must
// have been built with ServiceConfig.DeltaLog set.
func NewClusterLeader(svc *Service) (*ClusterLeader, error) { return cluster.NewLeader(svc) }

// NewClusterFollower builds (without starting) a follower catch-up
// loop; call Run, or CatchUp per round.
func NewClusterFollower(cfg ClusterFollowerConfig) (*ClusterFollower, error) {
	return cluster.NewFollower(cfg)
}

// NewGateway builds a cluster gateway over a static member list.
func NewGateway(cfg GatewayConfig) (*Gateway, error) { return cluster.NewGateway(cfg) }

// NewIndexDeltaLog returns a delta retention log keeping at most retain
// deltas (<= 0 = the default window of 64).
func NewIndexDeltaLog(retain int) *IndexDeltaLog { return index.NewDeltaLog(retain) }

// NewEmptyIndex returns an empty index with nshards shards — the
// placeholder a follower serves behind a 503 /readyz until its first
// snapshot installs.
func NewEmptyIndex(nshards int) *Index { return index.New(nshards) }

// WriteClusterSnapshot encodes a service's current index and stream
// registry as one framed snapshot artifact (what GET
// /replication/snapshot serves).
func WriteClusterSnapshot(w io.Writer, svc *Service) error { return cluster.WriteSnapshot(w, svc) }

// ReadClusterSnapshot decodes a snapshot artifact: the index, the
// registry, and the leader's registry epoch at snapshot time. maxBytes
// bounds each section's allocation.
func ReadClusterSnapshot(r io.Reader, maxBytes int64) (*Index, *StreamRegistry, uint64, error) {
	return cluster.ReadSnapshot(r, maxBytes)
}
